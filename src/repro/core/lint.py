"""Naming-discipline linter (section 3.1's contract, checkable).

The naming principle makes the optimizer's schema-level reasoning sound:
same reference name ⇒ same real-world entity, treated equivalently by
every consumer.  Two designs quietly break that contract:

* an attribute is transformed *in place* (reference name kept) somewhere
  while some other activity compares it against a constant — the Fig. 5
  guard is then "compromised ... if the designer uses the same name", in
  the paper's words: the comparison is format-sensitive, so the two value
  spaces are different entities and deserve different reference names;
* an attribute is transformed in place on some branches of a union but
  not on others while a downstream activity groups or filters on it —
  the flows then mix value formats under one name.

:func:`lint_workflow` detects both and returns structured findings.  It is
advisory: the transitions stay conservative regardless (the semantic
guard refuses to reorder such pairs), but a clean lint means every name
in the workflow honours the paper's contract.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.activity import Activity, CompositeActivity
from repro.core.workflow import ETLWorkflow
from repro.templates.base import ActivityKind

__all__ = ["LintLevel", "LintFinding", "lint_workflow"]


class LintLevel(enum.Enum):
    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class LintFinding:
    """One naming-discipline violation."""

    level: LintLevel
    rule: str
    attribute: str
    message: str
    activity_ids: tuple[str, ...]

    def __str__(self) -> str:
        return f"[{self.level.value}] {self.rule}({self.attribute}): {self.message}"


def _components(activity: Activity) -> tuple[Activity, ...]:
    if isinstance(activity, CompositeActivity):
        result: list[Activity] = []
        for component in activity.components:
            result.extend(_components(component))
        return tuple(result)
    return (activity,)


def _is_in_place_transform(activity: Activity) -> bool:
    return (
        activity.kind is ActivityKind.FUNCTION
        and len(activity.generated) == 0
        and len(activity.functionality) > 0
    )


def _is_constant_comparison(activity: Activity) -> bool:
    """Filters whose predicate compares attribute *values* to constants."""
    if activity.kind is not ActivityKind.FILTER:
        return False
    # Not-null and pk checks are value-format agnostic; range/selection
    # compare against literals.
    return activity.template.name in ("selection", "range_check")


def lint_workflow(workflow: ETLWorkflow) -> list[LintFinding]:
    """Check the workflow against the naming-principle contract."""
    findings: list[LintFinding] = []
    transforms: dict[str, list[Activity]] = {}
    comparisons: dict[str, list[Activity]] = {}
    groupers: dict[str, list[Activity]] = {}

    flattened = [
        component
        for activity in workflow.activities()
        for component in _components(activity)
    ]
    for activity in flattened:
        if _is_in_place_transform(activity):
            for attr in activity.functionality:
                transforms.setdefault(attr, []).append(activity)
        if _is_constant_comparison(activity):
            for attr in activity.functionality:
                comparisons.setdefault(attr, []).append(activity)
        if activity.kind is ActivityKind.AGGREGATION:
            for attr in activity.params.get("group_by", ()):
                groupers.setdefault(attr, []).append(activity)

    for attr, transformers in transforms.items():
        compared = comparisons.get(attr, [])
        if compared:
            findings.append(
                LintFinding(
                    level=LintLevel.ERROR,
                    rule="format-sensitive-comparison",
                    attribute=attr,
                    message=(
                        f"{attr} is transformed in place by "
                        f"{[a.id for a in transformers]} but compared to a "
                        f"constant by {[a.id for a in compared]}; the two "
                        "value spaces are different entities — give the "
                        "transform output a fresh reference name"
                    ),
                    activity_ids=tuple(
                        a.id for a in transformers + compared
                    ),
                )
            )

    findings.extend(_lint_partial_branch_transforms(workflow, transforms, groupers))
    return findings


def _lint_partial_branch_transforms(
    workflow: ETLWorkflow,
    transforms: dict[str, list[Activity]],
    groupers: dict[str, list[Activity]],
) -> list[LintFinding]:
    """Warn when only some converging branches transform a grouped attr."""
    findings: list[LintFinding] = []
    # Flatten composites the way the transforms/groupers scans do: a
    # convergence point packaged inside a CompositeActivity still merges
    # branches, so it must not escape the scan.  Graph navigation uses the
    # top-level container node; the finding reports the inner binary's id.
    binaries = [
        (component, container)
        for container in workflow.activities()
        if isinstance(container, Activity)
        for component in _components(container)
        if component.is_binary
    ]
    for attr, transformers in transforms.items():
        grouping_activities = groupers.get(attr, [])
        if not grouping_activities:
            continue
        for binary, container in binaries:
            # Mixing only matters when some grouper on this attribute sits
            # downstream of the convergence point.
            downstream = workflow.downstream(container)
            flattened_downstream = {
                component
                for node in downstream
                if isinstance(node, Activity)
                for component in _components(node)
            }
            if not any(g in flattened_downstream for g in grouping_activities):
                continue
            # Which branches (provider subtrees, looked at upstream) hold a
            # transformer of this attribute?
            branch_has = []
            for provider in workflow.providers(container):
                ancestors = {
                    component
                    for node in _ancestors(workflow, container, via=provider)
                    if isinstance(node, Activity)
                    for component in _components(node)
                }
                branch_has.append(
                    any(t in ancestors for t in transformers)
                )
            if any(branch_has) and not all(branch_has):
                findings.append(
                    LintFinding(
                        level=LintLevel.WARNING,
                        rule="mixed-format-branches",
                        attribute=attr,
                        message=(
                            f"{attr} is reformatted in place on only some "
                            f"branches converging at {binary.id} but is later "
                            "used as a grouper; groups will mix value formats"
                        ),
                        activity_ids=tuple(t.id for t in transformers),
                    )
                )
    return findings


def _ancestors(workflow: ETLWorkflow, node, via) -> set:
    """Nodes feeding ``node`` *only* through the provider ``via``.

    In a diamond-shaped flow a node in the shared region upstream of the
    fork reaches ``node`` through every provider; attributing it to each
    branch would make a partial-branch transform look total and suppress
    the warning.  Branch membership therefore excludes any node that also
    reaches ``node`` through a different provider.
    """
    import networkx as nx

    ancestors = nx.ancestors(workflow.graph, via) | {via}
    for other in workflow.providers(node):
        if other is via:
            continue
        ancestors -= nx.ancestors(workflow.graph, other) | {other}
    return ancestors
