"""Schemas: finite ordered lists of reference attribute names (section 2.1).

Every node of an ETL workflow is characterized by one or more schemata.  A
:class:`Schema` is an immutable, ordered, duplicate-free sequence of
reference attribute names.  Order matters for presentation (it is how the
designer laid the recordset out) but *not* for compatibility: two schemas
are compatible when they contain the same set of names, which is what the
union-branch check and the target-schema check use.

The class supports the small algebra the transition machinery needs:
subset tests, union, difference, and stable concatenation.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.exceptions import SchemaError

__all__ = ["Schema", "EMPTY_SCHEMA"]


class Schema:
    """An immutable ordered collection of attribute (reference) names."""

    __slots__ = ("_attrs", "_attr_set")

    def __init__(self, attrs: Iterable[str] = ()):
        attrs = tuple(attrs)
        seen: set[str] = set()
        for attr in attrs:
            if not isinstance(attr, str) or not attr:
                raise SchemaError(f"invalid attribute name: {attr!r}")
            if attr in seen:
                raise SchemaError(f"duplicate attribute {attr!r} in schema")
            seen.add(attr)
        self._attrs: tuple[str, ...] = attrs
        self._attr_set: frozenset[str] = frozenset(seen)

    # -- basic container protocol -------------------------------------------

    def __iter__(self) -> Iterator[str]:
        return iter(self._attrs)

    def __len__(self) -> int:
        return len(self._attrs)

    def __contains__(self, attr: object) -> bool:
        return attr in self._attr_set

    def __getitem__(self, index: int) -> str:
        return self._attrs[index]

    def __eq__(self, other: object) -> bool:
        """Order-sensitive equality (same attributes in the same order)."""
        if isinstance(other, Schema):
            return self._attrs == other._attrs
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._attrs)

    def __repr__(self) -> str:
        return f"Schema({list(self._attrs)!r})"

    def __str__(self) -> str:
        return "[" + ", ".join(self._attrs) + "]"

    # -- algebra --------------------------------------------------------------

    @property
    def attrs(self) -> tuple[str, ...]:
        """The attribute names, in order."""
        return self._attrs

    @property
    def as_set(self) -> frozenset[str]:
        """The attribute names as a set (for compatibility checks)."""
        return self._attr_set

    def issubset(self, other: "Schema | Iterable[str]") -> bool:
        """True when every attribute of this schema appears in ``other``."""
        if isinstance(other, Schema):
            return self._attr_set <= other._attr_set
        return self._attr_set <= set(other)

    def compatible(self, other: "Schema") -> bool:
        """True when both schemas contain the same attribute *set*.

        Order is a presentation detail; union branches and target recordsets
        are checked with this, not with ``==``.
        """
        return self._attr_set == other._attr_set

    def union(self, other: "Schema | Iterable[str]") -> "Schema":
        """Attributes of self followed by attributes of other not in self."""
        extra = [a for a in other if a not in self._attr_set]
        return Schema(self._attrs + tuple(extra))

    def minus(self, other: "Schema | Iterable[str]") -> "Schema":
        """Attributes of self that do not appear in ``other`` (stable)."""
        removed = other.as_set if isinstance(other, Schema) else set(other)
        return Schema(a for a in self._attrs if a not in removed)

    def intersect(self, other: "Schema | Iterable[str]") -> "Schema":
        """Attributes of self that also appear in ``other`` (stable)."""
        kept = other.as_set if isinstance(other, Schema) else set(other)
        return Schema(a for a in self._attrs if a in kept)

    def project(self, attrs: Iterable[str]) -> "Schema":
        """Reorder/restrict to ``attrs``; every name must be present."""
        attrs = tuple(attrs)
        missing = [a for a in attrs if a not in self._attr_set]
        if missing:
            raise SchemaError(f"cannot project on missing attributes {missing}")
        return Schema(attrs)

    def normalized(self) -> "Schema":
        """A canonical (sorted) ordering, used by signatures and comparisons."""
        return Schema(sorted(self._attrs))


EMPTY_SCHEMA = Schema(())
"""The empty schema (e.g. the generated schema of a filter)."""
