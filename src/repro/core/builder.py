"""A fluent builder for assembling ETL workflows.

The raw :class:`~repro.core.workflow.ETLWorkflow` API (add nodes, wire
port-annotated edges) is explicit but verbose.  :class:`WorkflowBuilder`
layers the conveniences scenario code wants on top of it:

* automatic priority ids in creation order (the paper's topological
  numbering), with optional explicit ids;
* linear chaining — each branch tracks its own head;
* template lookup by name against a :class:`TemplateLibrary`.

Example::

    from repro.core.builder import WorkflowBuilder

    b = WorkflowBuilder()
    orders = b.source("ORDERS", ["OID", "AMOUNT"], cardinality=10_000)
    flow = b.chain(
        orders,
        b.activity("not_null", {"attr": "AMOUNT"}, selectivity=0.95),
        b.activity(
            "selection",
            {"attr": "AMOUNT", "op": ">=", "value": 10.0},
            selectivity=0.5,
        ),
    )
    b.target("DW", ["OID", "AMOUNT"], provider=flow)
    workflow = b.build()
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import Any

from repro.core.activity import Activity
from repro.core.recordset import RecordSet, RecordSetKind
from repro.core.schema import Schema
from repro.core.workflow import ETLWorkflow, Node
from repro.exceptions import WorkflowError
from repro.templates.library import TemplateLibrary, default_library

__all__ = ["WorkflowBuilder"]


class WorkflowBuilder:
    """Incrementally assemble a validated :class:`ETLWorkflow`."""

    def __init__(self, library: TemplateLibrary | None = None):
        self.library = library if library is not None else default_library()
        self.workflow = ETLWorkflow()
        self._next_priority = 0

    # -- id management ---------------------------------------------------------

    def _fresh_id(self, explicit: str | None) -> str:
        if explicit is not None:
            return explicit
        self._next_priority += 1
        while str(self._next_priority) in {n.id for n in self.workflow.nodes()}:
            self._next_priority += 1
        return str(self._next_priority)

    # -- nodes -----------------------------------------------------------------

    def source(
        self,
        name: str,
        schema: Iterable[str] | Schema,
        cardinality: float = 0.0,
        id: str | None = None,
    ) -> RecordSet:
        """Add a source recordset."""
        node = RecordSet(
            self._fresh_id(id),
            name,
            schema if isinstance(schema, Schema) else Schema(schema),
            RecordSetKind.SOURCE,
            cardinality,
        )
        return self.workflow.add_node(node)

    def staging(
        self,
        name: str,
        schema: Iterable[str] | Schema,
        provider: Node | None = None,
        id: str | None = None,
    ) -> RecordSet:
        """Add an intermediate (staging) recordset, optionally wired."""
        node = RecordSet(
            self._fresh_id(id),
            name,
            schema if isinstance(schema, Schema) else Schema(schema),
            RecordSetKind.INTERMEDIATE,
        )
        self.workflow.add_node(node)
        if provider is not None:
            self.workflow.add_edge(provider, node)
        return node

    def target(
        self,
        name: str,
        schema: Iterable[str] | Schema,
        provider: Node | None = None,
        id: str | None = None,
    ) -> RecordSet:
        """Add a target recordset, optionally wired to its provider."""
        node = RecordSet(
            self._fresh_id(id),
            name,
            schema if isinstance(schema, Schema) else Schema(schema),
            RecordSetKind.TARGET,
        )
        self.workflow.add_node(node)
        if provider is not None:
            self.workflow.add_edge(provider, node)
        return node

    def activity(
        self,
        template: str,
        params: Mapping[str, Any],
        selectivity: float = 1.0,
        name: str | None = None,
        id: str | None = None,
    ) -> Activity:
        """Create (but do not wire) an activity from a library template."""
        node = Activity(
            self._fresh_id(id),
            self.library.get(template),
            params,
            selectivity=selectivity,
            name=name,
        )
        return self.workflow.add_node(node)

    # -- wiring ------------------------------------------------------------------

    def chain(self, head: Node, *activities: Activity) -> Node:
        """Wire ``activities`` in sequence after ``head``; returns the tail."""
        current = head
        for activity in activities:
            self.workflow.add_edge(current, activity)
            current = activity
        return current

    def combine(
        self,
        template: str,
        left: Node,
        right: Node,
        params: Mapping[str, Any] | None = None,
        selectivity: float = 1.0,
        name: str | None = None,
        id: str | None = None,
    ) -> Activity:
        """Add a binary activity consuming ``left`` (port 0) and ``right``."""
        node = self.activity(
            template, params or {}, selectivity=selectivity, name=name, id=id
        )
        self.workflow.add_edge(left, node, port=0)
        self.workflow.add_edge(right, node, port=1)
        return node

    def connect(self, provider: Node, consumer: Node, port: int = 0) -> None:
        """Wire one explicit edge (escape hatch)."""
        self.workflow.add_edge(provider, consumer, port=port)

    # -- finish --------------------------------------------------------------------

    def build(self) -> ETLWorkflow:
        """Validate and return the workflow."""
        try:
            self.workflow.validate()
            self.workflow.propagate_schemas()
        except WorkflowError:
            raise
        return self.workflow
