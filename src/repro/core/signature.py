"""Canonical state signatures (section 4.1).

During search we must discern states from one another so that the same
state is never generated (and costed) twice.  The paper assigns each
activity its priority from the initial topological ordering as a lifelong
identifier and builds a string per state; the signature of Fig. 1 is
``((1.3)//(2.4.5.6)).7.8.9``.

We reproduce that format: a linear chain renders as ids joined by ``.``;
converging branches render as ``(b1//b2)`` in front of the id of the node
they converge on.  For *commutative* binary activities (union, join,
intersection) the branch strings are sorted so that mirror-image states get
one canonical signature; for non-commutative ones (difference) port order
is preserved.  Workflows with several targets are rendered as the sorted
``//``-join of the per-target signatures.
"""

from __future__ import annotations

from repro.core.activity import Activity
from repro.core.workflow import ETLWorkflow, Node

__all__ = ["state_signature"]


def state_signature(workflow: ETLWorkflow) -> str:
    """The canonical signature string of a state."""
    memo: dict[Node, str] = {}
    target_signatures = sorted(
        _node_signature(workflow, target, memo) for target in workflow.targets()
    )
    return "//".join(target_signatures)


def _node_signature(
    workflow: ETLWorkflow, node: Node, memo: dict[Node, str]
) -> str:
    cached = memo.get(node)
    if cached is not None:
        return cached
    providers = workflow.providers(node)
    if not providers:
        signature = str(node.id)
    elif len(providers) == 1:
        prefix = _node_signature(workflow, providers[0], memo)
        signature = f"{prefix}.{node.id}"
    else:
        branches = [f"({_node_signature(workflow, p, memo)})" for p in providers]
        if _is_commutative(node):
            branches.sort()
        joined = "//".join(branches)
        signature = f"({joined}).{node.id}"
    memo[node] = signature
    return signature


def _is_commutative(node: Node) -> bool:
    if isinstance(node, Activity) and node.is_binary:
        return node.template.commutative
    return True
