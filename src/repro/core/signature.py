"""Canonical state signatures (section 4.1) and workflow fingerprints.

During search we must discern states from one another so that the same
state is never generated (and costed) twice.  The paper assigns each
activity its priority from the initial topological ordering as a lifelong
identifier and builds a string per state; the signature of Fig. 1 is
``((1.3)//(2.4.5.6)).7.8.9``.

We reproduce that format: a linear chain renders as ids joined by ``.``;
converging branches render as ``(b1//b2)`` in front of the id of the node
they converge on.  For *commutative* binary activities (union, join,
intersection) the branch strings are sorted so that mirror-image states get
one canonical signature; for non-commutative ones (difference) port order
is preserved.  Workflows with several targets are rendered as the sorted
``//``-join of the per-target signatures.

A signature identifies a state only *within* one optimization problem: it
is built from node ids, so two unrelated workflows that happen to share
ids collide.  :func:`workflow_fingerprint` closes that gap for the
transposition cache — a content hash over every node's full descriptor
(template, parameters, selectivity, schema, cardinality) and the
port-annotated edge list, stable across processes and sessions.
"""

from __future__ import annotations

import hashlib

from repro.core.activity import Activity, CompositeActivity
from repro.core.workflow import ETLWorkflow, Node

__all__ = ["state_signature", "workflow_fingerprint"]


def state_signature(workflow: ETLWorkflow) -> str:
    """The canonical signature string of a state.

    One forward pass over the (cached) topological order — the recursive
    provider walk this replaces dominated successor generation once
    transition application itself became incremental.
    """
    memo: dict[Node, str] = {}
    graph_pred = workflow.graph._pred
    for node in workflow.topological_order():
        pred = graph_pred[node]
        if not pred:
            memo[node] = str(node.id)
        elif len(pred) == 1:
            (provider,) = pred
            memo[node] = f"{memo[provider]}.{node.id}"
        else:
            if _is_commutative(node):
                # Commutative ⇒ canonical branch order is lexicographic,
                # so the port order of the providers is irrelevant.
                branches = sorted(f"({memo[p]})" for p in pred)
            else:
                ordered = sorted(pred, key=lambda p: pred[p]["port"])
                branches = [f"({memo[p]})" for p in ordered]
            memo[node] = f"({'//'.join(branches)}).{node.id}"
    targets = workflow.targets()
    if len(targets) == 1:
        return memo[targets[0]]
    return "//".join(sorted(memo[target] for target in targets))


def _is_commutative(node: Node) -> bool:
    if isinstance(node, Activity) and node.is_binary:
        return node.template.commutative
    return True


def _activity_descriptor(activity: Activity) -> str:
    if isinstance(activity, CompositeActivity):
        parts = "+".join(_activity_descriptor(c) for c in activity.components)
        return f"composite[{parts}]"
    params = ",".join(
        f"{key}={activity.params[key]!r}" for key in sorted(activity.params)
    )
    return (
        f"activity:{activity.id}:{activity.template.name}"
        f"({params})@{activity.selectivity!r}"
    )


def workflow_fingerprint(workflow: ETLWorkflow) -> str:
    """A stable content hash of a workflow (nodes + wiring).

    Unlike :func:`state_signature` — which encodes only node *ids* and
    structure — the fingerprint covers everything state costs depend on:
    template names, instantiation parameters, selectivities, recordset
    schemas and cardinalities.  All states explored from one initial
    workflow share its node population, so the fingerprint of the initial
    state namespaces an entire search space in the transposition cache.
    """
    lines: list[str] = []
    for node in sorted(workflow.nodes(), key=lambda n: n.id):
        if isinstance(node, Activity):
            lines.append(_activity_descriptor(node))
        else:
            lines.append(
                f"recordset:{node.id}:{node.name}:{node.kind.value}"
                f":{','.join(node.schema)}@{node.cardinality!r}"
            )
    edges = sorted(
        (provider.id, consumer.id, workflow.edge_port(provider, consumer))
        for provider, consumer in workflow.graph.edges
    )
    lines.extend(f"edge:{p}->{c}#{port}" for p, c, port in edges)
    digest = hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()
    return digest[:24]
