"""Activity post-conditions (section 3.4).

The paper establishes transition correctness with a black-box calculus:
every node carries a logical *post-condition* — a predicate over the
attributes of its functionality schema (activities) or of its schema
(recordsets) — set to true once the node has processed all its data.  A
workflow's post-condition ``Cond_G`` is the conjunction of its nodes'
predicates; two workflows are equivalent when their target schemas match
and their post-conditions are logically equivalent.

Conjunction is commutative and idempotent, so ``Cond_G`` is represented as
a *set* of :class:`Predicate` values: swapping activities leaves the set
unchanged, and factorize/distribute/merge/split replace activities with
semantically identical ones (clones or packages), again leaving the set
unchanged — which is exactly the paper's Theorem 2 in this representation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.activity import Activity, CompositeActivity
from repro.core.recordset import RecordSet
from repro.core.workflow import ETLWorkflow, Node

__all__ = ["Predicate", "node_predicates", "workflow_post_condition"]


@dataclass(frozen=True)
class Predicate:
    """One post-condition: a named predicate with fixed semantics.

    ``name`` is the template's predicate name (``NN``, ``SEL``, ``SK`` ...);
    ``variables`` are the functionality-schema attributes materializing the
    template's parameter variables (``$2E(#vrbl1)`` instantiated as
    ``$2E(COST)`` in the paper's example); ``qualifier`` pins the remaining
    instantiation parameters so that e.g. two selections on the same
    attribute with different thresholds stay distinguishable.
    """

    name: str
    variables: tuple[str, ...]
    qualifier: Any = ()

    def __str__(self) -> str:
        return f"{self.name}({','.join(self.variables)})"


def node_predicates(node: Node) -> frozenset[Predicate]:
    """The post-condition predicates contributed by one node.

    Plain activities and recordsets contribute one predicate; a merged
    (composite) activity contributes the predicates of its components —
    MER/SPL only package activities, they do not change semantics.
    """
    if isinstance(node, CompositeActivity):
        result: set[Predicate] = set()
        for component in node.components:
            result |= node_predicates(component)
        return frozenset(result)
    if isinstance(node, Activity):
        return frozenset(
            {
                Predicate(
                    name=node.template.predicate_name,
                    variables=node.functionality.attrs,
                    qualifier=node.semantics_key(),
                )
            }
        )
    assert isinstance(node, RecordSet)
    return frozenset(
        {
            Predicate(
                name=node.name,
                variables=tuple(sorted(node.schema.as_set)),
                qualifier=node.kind.value,
            )
        }
    )


def workflow_post_condition(workflow: ETLWorkflow) -> frozenset[Predicate]:
    """``Cond_G``: the conjunction of all node post-conditions, as a set."""
    result: set[Predicate] = set()
    for node in workflow.nodes():
        result |= node_predicates(node)
    return frozenset(result)
