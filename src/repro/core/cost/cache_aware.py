"""A cache-aware cost model: the paper's argument for factorization.

Section 2.2 motivates FAC with caching: "if an activity can cache data
(like in the case of surrogate key assignment, where the lookup table can
be cached), such a transformation can be beneficial" — performing the
operation once on the merged flow pays the cache-priming cost once
instead of once per branch.

:class:`CacheAwareCostModel` prices each instance of a *caching template*
as ``setup_cost + n`` (prime the lookup cache, then O(1) per row) instead
of the sort-shaped ``n·log2 n``.  Under this model FAC of two surrogate
keys into one after the union saves a whole ``setup_cost``, so the
optimizer prefers the paper's Fig. 4 case 3 — whereas under the plain
processed-rows model case 2 (distribution) wins.  The ablation bench
``benchmarks/bench_ablation_cache_model.py`` demonstrates exactly that
flip.
"""

from __future__ import annotations

from repro.core.activity import Activity, CompositeActivity
from repro.core.cost.model import ProcessedRowsCostModel

__all__ = ["CacheAwareCostModel"]


class CacheAwareCostModel(ProcessedRowsCostModel):
    """Processed-rows model with per-instance cache-priming costs.

    Args:
        setup_cost: fixed cost of priming one caching activity's lookup
            structure (e.g. loading the surrogate-key table).
        cached_templates: template names priced as ``setup_cost + n``.
    """

    def __init__(
        self,
        setup_cost: float = 100.0,
        cached_templates: frozenset[str] = frozenset({"surrogate_key"}),
    ):
        if setup_cost < 0:
            raise ValueError("setup_cost must be >= 0")
        self.setup_cost = float(setup_cost)
        self.cached_templates = frozenset(cached_templates)

    def activity_cost(
        self, activity: Activity, input_cards: tuple[float, ...]
    ) -> float:
        if isinstance(activity, CompositeActivity):
            return self._composite_cost(activity, input_cards)
        if activity.template.name in self.cached_templates:
            self._check_arity(activity, input_cards)
            return self.setup_cost + float(input_cards[0])
        return super().activity_cost(activity, input_cards)
