"""Concrete cost formulae per cost shape (Fig. 4 and reference [15]).

The paper's Fig. 4 example prices a surrogate-key assignment at
``n·log2 n`` and a selection at ``n``; these helpers generalize that to the
four shipped shapes.  ``n·log2 n`` degrades gracefully to ``n`` for inputs
of one row or fewer so costs stay monotone and non-negative.
"""

from __future__ import annotations

import math

from repro.exceptions import ReproError
from repro.templates.base import CostShape

__all__ = ["nlogn", "cost_for_shape"]


def nlogn(n: float) -> float:
    """``n · log2 n``, clamped to ``n`` for ``n <= 2`` (where log2 n <= 1)."""
    if n < 0:
        raise ReproError(f"negative cardinality: {n}")
    if n <= 2:
        return float(n)
    return n * math.log2(n)


def cost_for_shape(shape: CostShape, input_cards: tuple[float, ...]) -> float:
    """Invocation cost of an activity with the given shape and inputs."""
    if shape is CostShape.LINEAR:
        return float(input_cards[0])
    if shape is CostShape.SORT:
        return nlogn(input_cards[0])
    if shape is CostShape.MERGE:
        return float(input_cards[0] + input_cards[1])
    if shape is CostShape.SORT_MERGE:
        return nlogn(input_cards[0]) + nlogn(input_cards[1])
    raise ReproError(f"unknown cost shape: {shape!r}")
