"""Cost-model protocol (section 2.2).

The paper is deliberately cost-model agnostic: "our approach is general in
that it is not in particular dependent on the cost model chosen".  A cost
model answers two questions per activity: *what does one invocation cost*
(as a function of input cardinalities) and *how many rows come out*.  The
state cost is the sum of activity costs, ``C(S) = Σ c(a_i)``.

:class:`ProcessedRowsCostModel` is the paper's experimental model — "a
simple cost model taking into consideration only the number of processed
rows based on simple formulae [15] and assigned selectivities".
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.core.activity import Activity, CompositeActivity
from repro.core.cost.formulas import cost_for_shape
from repro.exceptions import ReproError

__all__ = ["CostModel", "ProcessedRowsCostModel", "LinearCostModel"]


@runtime_checkable
class CostModel(Protocol):
    """Anything that can price an activity and predict its output size."""

    def activity_cost(
        self, activity: Activity, input_cards: tuple[float, ...]
    ) -> float:
        """Cost of one invocation given its input cardinalities."""
        ...

    def output_cardinality(
        self, activity: Activity, input_cards: tuple[float, ...]
    ) -> float:
        """Expected output row count given its input cardinalities."""
        ...


class ProcessedRowsCostModel:
    """The paper's processed-rows model with per-shape formulae.

    Costs (``n`` = input rows): row-wise activities cost ``n``; sort-based
    ones (surrogate key, aggregation) cost ``n·log2 n`` — the Fig. 4
    formulae; union costs ``n1+n2``; join/difference/intersection cost
    ``n1·log2 n1 + n2·log2 n2``.

    Cardinalities come from the *declared* selectivity of each activity:
    ``sel·n`` for unary activities (for aggregations the selectivity is the
    grouping ratio), ``n1+n2`` for union, ``sel·n1·n2`` for join,
    ``sel·n1`` for difference and ``sel·min(n1,n2)`` for intersection.
    """

    def activity_cost(
        self, activity: Activity, input_cards: tuple[float, ...]
    ) -> float:
        if isinstance(activity, CompositeActivity):
            return self._composite_cost(activity, input_cards)
        self._check_arity(activity, input_cards)
        return cost_for_shape(activity.template.cost_shape, input_cards)

    def output_cardinality(
        self, activity: Activity, input_cards: tuple[float, ...]
    ) -> float:
        if isinstance(activity, CompositeActivity):
            card = input_cards[0]
            for component in activity.components:
                card = self.output_cardinality(component, (card,))
            return card
        self._check_arity(activity, input_cards)
        if activity.is_unary:
            return activity.selectivity * input_cards[0]
        left, right = input_cards
        name = activity.template.name
        if name == "union":
            return left + right
        if name == "join":
            return activity.selectivity * left * right
        if name == "difference":
            return activity.selectivity * left
        if name == "intersection":
            return activity.selectivity * min(left, right)
        # Custom binary templates fall back to a selectivity over the
        # larger input — a neutral default users can override.
        return activity.selectivity * max(left, right)

    def _composite_cost(
        self, composite: CompositeActivity, input_cards: tuple[float, ...]
    ) -> float:
        card = input_cards[0]
        total = 0.0
        for component in composite.components:
            total += self.activity_cost(component, (card,))
            card = self.output_cardinality(component, (card,))
        return total

    @staticmethod
    def _check_arity(activity: Activity, input_cards: tuple[float, ...]) -> None:
        if len(input_cards) != activity.arity:
            raise ReproError(
                f"activity {activity.id}: expected {activity.arity} input "
                f"cardinalities, got {len(input_cards)}"
            )


class LinearCostModel(ProcessedRowsCostModel):
    """A degenerate model where every activity costs its input row count.

    Useful as a second instance to exercise the cost-model-agnostic API and
    in tests that need hand-computable numbers.
    """

    def activity_cost(
        self, activity: Activity, input_cards: tuple[float, ...]
    ) -> float:
        if isinstance(activity, CompositeActivity):
            return self._composite_cost(activity, input_cards)
        self._check_arity(activity, input_cards)
        return float(sum(input_cards))
