"""State costing: full and semi-incremental (section 4.1).

``C(S) = Σ c(a_i)`` over all activities of the state.  Cardinalities flow
from the source recordsets (their declared ``cardinality``) through the
graph; each activity's cost is a function of its input cardinalities.

The paper computes state costs *semi-incrementally*: after a transition,
only the cost "of the path from the affected activities towards the
target" changes.  :func:`estimate_incremental` implements that with a
work-list: starting from the affected nodes, it re-derives cardinalities
and re-prices consumers only while an input cardinality actually changed —
for a swap this typically terminates after the two swapped activities,
because the product of selectivities downstream is unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.activity import Activity
from repro.core.cost.model import CostModel
from repro.core.recordset import RecordSet
from repro.core.workflow import ETLWorkflow, Node

__all__ = ["CostReport", "estimate", "estimate_incremental"]


@dataclass(frozen=True)
class CostReport:
    """Per-node cardinalities/costs and the resulting state cost.

    ``total`` is always built with :func:`math.fsum`, which is exactly
    rounded and therefore independent of summation order — an
    incrementally maintained report and a from-scratch one agree to the
    last bit, which is what lets the differential cost-oracle suite
    assert ``==`` instead of an epsilon.
    """

    total: float
    node_costs: dict[Node, float]
    cardinalities: dict[Node, float]
    #: Number of nodes whose cost/cardinality was (re-)derived to build
    #: this report — ``len(node_costs)`` for a full estimate, the dirty
    #: set size for a delta-maintained one (telemetry:
    #: ``search.delta_recost_nodes``).
    recosted_nodes: int = field(default=0, compare=False)

    def cost_of(self, node: Node) -> float:
        return self.node_costs.get(node, 0.0)


def _node_outputs(
    workflow: ETLWorkflow,
    model: CostModel,
    node: Node,
    cards: dict[Node, float],
) -> tuple[float, float]:
    """(cost, output cardinality) of one node given provider cardinalities."""
    if isinstance(node, RecordSet):
        if node.is_source:
            return 0.0, node.cardinality
        provider = workflow.providers(node)[0]
        return 0.0, cards[provider]
    assert isinstance(node, Activity)
    input_cards = tuple(cards[p] for p in workflow.providers(node))
    cost = model.activity_cost(node, input_cards)
    out = model.output_cardinality(node, input_cards)
    return cost, out


def estimate(workflow: ETLWorkflow, model: CostModel) -> CostReport:
    """Full cost estimation by one topological pass."""
    cards: dict[Node, float] = {}
    costs: dict[Node, float] = {}
    for node in workflow.topological_order():
        cost, out = _node_outputs(workflow, model, node, cards)
        cards[node] = out
        if isinstance(node, Activity):
            costs[node] = cost
    return CostReport(
        total=math.fsum(costs.values()),
        node_costs=costs,
        cardinalities=cards,
        recosted_nodes=len(cards),
    )


def estimate_incremental(
    workflow: ETLWorkflow,
    model: CostModel,
    parent: CostReport,
    affected: tuple[Node, ...],
) -> CostReport:
    """Re-cost a successor state starting from a parent state's report.

    ``workflow`` is the successor; ``parent`` is the report of the state the
    transition was applied to; ``affected`` are the nodes the transition
    moved, created, or replaced (see ``Transition.affected_nodes``).

    The parent's cardinalities are reused for every node whose inputs did
    not change; affected nodes and any consumer whose input cardinality
    shifted are re-derived.  The result is numerically identical to
    :func:`estimate` (asserted by property tests).
    """
    cards = dict(parent.cardinalities)
    if len(cards) != len(workflow):
        # Drop nodes that no longer exist (FAC/DIS/MER/SPL change the
        # node population, and always change the node *count* — so an
        # unchanged count means an unchanged population and the per-node
        # membership filter can be skipped on the dominant SWA path).
        cards = {node: card for node, card in cards.items() if node in workflow}
        costs = {
            node: cost
            for node, cost in parent.node_costs.items()
            if node in workflow
        }
    else:
        costs = dict(parent.node_costs)

    dirty = {node for node in affected if node in workflow}
    # Every transition rewires in-edges only of affected nodes, newly
    # created nodes, or direct consumers of affected nodes — so seeding
    # those consumers too means any node left clean kept its exact
    # provider set, and the bitwise cutoff below is a sound induction.
    # (A consumer's provider can change *identity* without the affected
    # node's own cardinality changing; comparing against the wrong
    # parent entry would let a stale float survive.)
    for node in tuple(dirty):
        for consumer in workflow.consumers(node):
            dirty.add(consumer)
    recosted = 0
    for node in workflow.topological_order():
        if node not in cards:
            dirty.add(node)  # newly created node (clone / merged activity)
        if node not in dirty:
            continue
        old_card = cards.get(node)
        cost, out = _node_outputs(workflow, model, node, cards)
        recosted += 1
        cards[node] = out
        if isinstance(node, Activity):
            costs[node] = cost
        # Exact cutoff: propagation stops only on bit-identical
        # cardinalities, so by induction every node carries the same float
        # a from-scratch pass would compute and the delta-maintained
        # report equals the full one exactly (not merely within an
        # epsilon).  A last-ulp difference extends the dirty frontier a
        # few nodes further; re-pricing a node is a handful of multiplies,
        # so exactness costs next to nothing.
        if old_card is None or out != old_card:
            for consumer in workflow.consumers(node):
                dirty.add(consumer)
    return CostReport(
        total=math.fsum(costs.values()),
        node_costs=costs,
        cardinalities=cards,
        recosted_nodes=recosted,
    )
