"""Cost models and state costing (paper sections 2.2 and 4.1)."""

from repro.core.cost.cache_aware import CacheAwareCostModel
from repro.core.cost.estimator import CostReport, estimate, estimate_incremental
from repro.core.cost.formulas import cost_for_shape, nlogn
from repro.core.cost.model import (
    CostModel,
    LinearCostModel,
    ProcessedRowsCostModel,
)

__all__ = [
    "CostModel",
    "ProcessedRowsCostModel",
    "LinearCostModel",
    "CacheAwareCostModel",
    "CostReport",
    "estimate",
    "estimate_incremental",
    "cost_for_shape",
    "nlogn",
]
