"""Random ETL workflow generator for the paper's experiments (section 4.2).

The paper evaluates on "40 different ETL workflows categorized as small,
medium, and large, involving a range of 15 to 70 activities".  The
workloads themselves are not published, so this generator synthesizes
workflows matching the described size bands, with the structure real ETL
designs exhibit (and the paper's examples use):

* several source branches, each with a data-manipulation *conversion*
  (``V1 -> W1``), optionally a surrogate-key assignment, a not-null check,
  an in-place date reformat, and assorted filters;
* a union tree combining the branches;
* a tail with an optional monthly-style aggregation, late selections and
  an optional projection.

Two deliberate biases give the optimizer the headroom the paper reports
(45-78 % improvements): filters are placed *after* the expensive
conversions inside each branch ("written in reading order"), and the most
selective filters sit in the tail, after the union — exactly the
situations SWA and DIS exploit.  Homologous conversions/surrogate keys
across branches create the FAC opportunities.

Every generated workload bundles the engine context (surrogate-key lookup
tables, reference key sets) and a data factory, so any state derived from
it can be executed and checked for empirical equivalence.
"""

from __future__ import annotations

import random
import zlib
from collections.abc import Callable
from dataclasses import dataclass

from repro.core.activity import Activity
from repro.core.recordset import RecordSet, RecordSetKind
from repro.core.schema import Schema
from repro.core.workflow import ETLWorkflow, Node
from repro.engine.operators import EngineContext, default_scalar_functions
from repro.engine.rows import Row
from repro.exceptions import ReproError
from repro.templates import builtin as t
from repro.workloads.datagen import make_generic_rows

__all__ = ["CategorySpec", "CATEGORY_SPECS", "GeneratedWorkload", "generate_workload", "generate_suite"]

_KEY_DOMAIN = 200
_VALUE_HIGH = 100.0


@dataclass(frozen=True)
class CategorySpec:
    """Size band of one workload category (Table 2's "volume of activities")."""

    name: str
    activities: tuple[int, int]
    sources: tuple[int, int]


CATEGORY_SPECS: dict[str, CategorySpec] = {
    "tiny": CategorySpec("tiny", (7, 10), (2, 2)),
    "small": CategorySpec("small", (15, 25), (2, 3)),
    "medium": CategorySpec("medium", (35, 45), (3, 5)),
    "large": CategorySpec("large", (65, 75), (5, 8)),
}


@dataclass
class GeneratedWorkload:
    """A generated initial state plus everything needed to execute it."""

    workflow: ETLWorkflow
    context: EngineContext
    make_data: Callable[..., dict[str, list[Row]]]
    category: str
    seed: int
    activity_count: int
    source_names: tuple[str, ...]


class _Builder:
    """Assembles one workflow, assigning priority ids in creation order."""

    def __init__(self) -> None:
        self.workflow = ETLWorkflow()
        self._next_id = 0

    def fresh_id(self) -> str:
        self._next_id += 1
        return str(self._next_id)

    def add(self, node: Node) -> Node:
        return self.workflow.add_node(node)


def _selection(builder: _Builder, rng: random.Random, attr: str) -> Activity:
    selectivity = round(rng.uniform(0.30, 0.90), 2)
    if rng.random() < 0.5:
        op, value = ">=", round(_VALUE_HIGH * (1.0 - selectivity), 2)
    else:
        op, value = "<=", round(_VALUE_HIGH * selectivity, 2)
    return Activity(
        builder.fresh_id(),
        t.SELECTION,
        {"attr": attr, "op": op, "value": value},
        selectivity=selectivity,
        name=f"σ({attr}{op}{value:g})",
    )


def _range_check(builder: _Builder, rng: random.Random, attr: str) -> Activity:
    selectivity = round(rng.uniform(0.40, 0.90), 2)
    half_width = _VALUE_HIGH * selectivity / 2.0
    low = round(_VALUE_HIGH / 2.0 - half_width, 2)
    high = round(_VALUE_HIGH / 2.0 + half_width, 2)
    return Activity(
        builder.fresh_id(),
        t.RANGE_CHECK,
        {"attr": attr, "low": low, "high": high},
        selectivity=selectivity,
        name=f"RC({attr}∈[{low:g},{high:g}])",
    )


def _not_null(builder: _Builder, attr: str) -> Activity:
    return Activity(
        builder.fresh_id(),
        t.NOT_NULL,
        {"attr": attr},
        selectivity=0.95,
        name=f"NN({attr})",
    )


def _pk_check(builder: _Builder) -> Activity:
    return Activity(
        builder.fresh_id(),
        t.PK_CHECK,
        {"key_attrs": ("KEY",), "reference": "dw_keys"},
        selectivity=0.90,
        name="PK(KEY)",
    )


def _convert(builder: _Builder) -> Activity:
    return Activity(
        builder.fresh_id(),
        t.FUNCTION_APPLY,
        {
            "function": "scale_double",
            "inputs": ("V1",),
            "output": "W1",
            "injective": True,
        },
        selectivity=1.0,
        name="f(V1->W1)",
    )


def _surrogate_key(builder: _Builder) -> Activity:
    return Activity(
        builder.fresh_id(),
        t.SURROGATE_KEY,
        {
            "key_attr": "KEY",
            "skey_attr": "SKEY",
            "lookup": "sk_parts",
            "lookup_size": _KEY_DOMAIN,
        },
        selectivity=1.0,
        name="SK(KEY->SKEY)",
    )


def _date_reformat(builder: _Builder) -> Activity:
    return Activity(
        builder.fresh_id(),
        t.FUNCTION_APPLY,
        {
            "function": "date_us_to_eu",
            "inputs": ("DATE",),
            "output": "DATE",
            "injective": True,
        },
        selectivity=1.0,
        name="A2E(DATE)",
    )


def generate_workload(
    category: str = "small",
    seed: int = 0,
    rows_per_source: int = 120,
) -> GeneratedWorkload:
    """Generate one initial workflow of the given category.

    The result is deterministic in ``(category, seed)``.
    """
    try:
        spec = CATEGORY_SPECS[category]
    except KeyError:
        raise ReproError(
            f"unknown category {category!r}; choose from "
            f"{sorted(CATEGORY_SPECS)}"
        ) from None
    # zlib.crc32 keeps the stream deterministic across processes (str hash
    # randomization would break reproducibility of the suites).
    rng = random.Random(zlib.crc32(category.encode()) * 100_003 + seed)
    builder = _Builder()

    n_sources = rng.randint(*spec.sources)
    target_activities = rng.randint(*spec.activities)
    with_surrogate_key = rng.random() < 0.6
    with_aggregation = rng.random() < 0.5

    # Pre-draw each branch's cleansing flags so the remaining budget is
    # known before any selection filters are allocated.
    branch_flags = [
        {
            "not_null": rng.random() < 0.6,
            "pk_check": rng.random() < 0.4,
            "date_reformat": rng.random() < 0.3,
        }
        for _ in range(n_sources)
    ]
    per_branch_fixed = [
        1  # the conversion
        + (1 if with_surrogate_key else 0)
        + sum(1 for enabled in flags.values() if enabled)
        for flags in branch_flags
    ]
    n_unions = n_sources - 1
    # With an aggregation the movable tail filters must sit *before* it
    # (its output attribute blocks pushes); one late filter stays after.
    n_tail_filters = rng.randint(1, 3)
    n_post_agg_filters = 1 if with_aggregation else 0
    with_projection = (not with_aggregation) and rng.random() < 0.4
    tail_fixed = (
        (1 if with_aggregation else 0)
        + n_tail_filters
        + n_post_agg_filters
        + (1 if with_projection else 0)
    )
    optional_budget = max(
        0,
        target_activities - (sum(per_branch_fixed) + n_unions + tail_fixed),
    )
    # Spread the selection-filter budget across branches.
    branch_budgets = [0] * n_sources
    for _ in range(optional_budget):
        branch_budgets[rng.randrange(n_sources)] += 1

    source_schema = Schema(["KEY", "SRC", "DATE", "V1", "V2", "V3"])
    source_names: list[str] = []
    branch_heads: list[Node] = []

    for index in range(n_sources):
        name = f"SRC{index + 1}"
        source_names.append(name)
        source = builder.add(
            RecordSet(
                builder.fresh_id(),
                name,
                source_schema,
                RecordSetKind.SOURCE,
                cardinality=float(rows_per_source),
            )
        )
        head = _build_branch(
            builder,
            rng,
            source,
            n_selections=branch_budgets[index],
            with_surrogate_key=with_surrogate_key,
            flags=branch_flags[index],
        )
        branch_heads.append(head)

    # Union tree over the branches (random combination order).
    while len(branch_heads) > 1:
        first = branch_heads.pop(rng.randrange(len(branch_heads)))
        second = branch_heads.pop(rng.randrange(len(branch_heads)))
        union = builder.add(Activity(builder.fresh_id(), t.UNION, {}, name="U"))
        builder.workflow.add_edge(first, union, port=0)
        builder.workflow.add_edge(second, union, port=1)
        branch_heads.append(union)
    head = branch_heads[0]

    # Tail: movable late filters, optional aggregation (with one filter on
    # the aggregate after it), optional projection.  Placing the movable
    # filters after the union is the "written in reading order" bad design
    # DIS and SWA repair.
    key_attr = "SKEY" if with_surrogate_key else "KEY"
    movable_attrs = ["V2", "V3", "W1"]
    for _ in range(n_tail_filters):
        tail_filter = builder.add(
            _selection(builder, rng, rng.choice(movable_attrs))
        )
        builder.workflow.add_edge(head, tail_filter)
        head = tail_filter

    if with_aggregation:
        aggregate = builder.add(
            Activity(
                builder.fresh_id(),
                t.AGGREGATION,
                {
                    "group_by": (key_attr, "SRC", "DATE"),
                    "measure": "W1",
                    "agg": "sum",
                    "output": "W1M",
                },
                selectivity=round(rng.uniform(0.10, 0.40), 2),
                name="γSUM(W1->W1M)",
            )
        )
        builder.workflow.add_edge(head, aggregate)
        head = aggregate
        for _ in range(n_post_agg_filters):
            late = builder.add(_selection(builder, rng, "W1M"))
            builder.workflow.add_edge(head, late)
            head = late

    if with_projection:
        projection = builder.add(
            Activity(
                builder.fresh_id(),
                t.PROJECTION,
                {"attrs": ("V3",)},
                selectivity=1.0,
                name="PIout(V3)",
            )
        )
        builder.workflow.add_edge(head, projection)
        head = projection

    target_schema = _derive_target_schema(
        with_surrogate_key, with_aggregation, with_projection, key_attr
    )
    warehouse = builder.add(
        RecordSet(
            builder.fresh_id(), "DW", target_schema, RecordSetKind.TARGET
        )
    )
    builder.workflow.add_edge(head, warehouse)

    builder.workflow.validate()
    builder.workflow.propagate_schemas()

    context = _make_context(rng)
    activity_count = sum(1 for _ in builder.workflow.activities())

    def make_data(data_seed: int = 0, n: int | None = None) -> dict[str, list[Row]]:
        size = rows_per_source if n is None else n
        return {
            name: make_generic_rows(
                size, data_seed + offset, name, key_domain=_KEY_DOMAIN
            )
            for offset, name in enumerate(source_names)
        }

    return GeneratedWorkload(
        workflow=builder.workflow,
        context=context,
        make_data=make_data,
        category=category,
        seed=seed,
        activity_count=activity_count,
        source_names=tuple(source_names),
    )


def _build_branch(
    builder: _Builder,
    rng: random.Random,
    source: Node,
    n_selections: int,
    with_surrogate_key: bool,
    flags: dict[str, bool],
) -> Node:
    """One source branch; returns its last node.

    Layout (deliberately filter-late): [NN(V1)?] -> convert(V1->W1) ->
    [PK?] -> [SK?] -> [A2E?] -> the selection filters.  Selections on
    V2/V3 can be swapped all the way down past the expensive conversion
    and surrogate key — the optimization headroom; selections on W1 are
    pinned behind the conversion that generates it (the paper's
    ``σ(€) / $2€`` blocking case).
    """
    head = source

    def attach(activity: Activity) -> None:
        nonlocal head
        builder.add(activity)
        builder.workflow.add_edge(head, activity)
        head = activity

    if flags["not_null"]:
        attach(_not_null(builder, "V1"))
    attach(_convert(builder))
    if flags["pk_check"]:
        attach(_pk_check(builder))
    if with_surrogate_key:
        attach(_surrogate_key(builder))
    if flags["date_reformat"]:
        attach(_date_reformat(builder))
    filter_attrs = ("V2", "V3", "V2", "V3", "W1")  # W1 filters are rarer
    for _ in range(n_selections):
        attr = rng.choice(filter_attrs)
        if rng.random() < 0.7:
            attach(_selection(builder, rng, attr))
        else:
            attach(_range_check(builder, rng, attr))
    return head


def _derive_target_schema(
    with_surrogate_key: bool,
    with_aggregation: bool,
    with_projection: bool,
    key_attr: str,
) -> Schema:
    if with_aggregation:
        return Schema([key_attr, "SRC", "DATE", "W1M"])
    attrs = [key_attr, "SRC", "DATE", "W1", "V2", "V3"]
    if with_projection:
        attrs.remove("V3")
    return Schema(attrs)


def _make_context(rng: random.Random) -> EngineContext:
    context = EngineContext(scalar_functions=default_scalar_functions())
    context.lookups["sk_parts"] = {
        key: 10_000 + key for key in range(_KEY_DOMAIN)
    }
    existing = rng.sample(range(_KEY_DOMAIN), k=_KEY_DOMAIN // 10)
    context.references["dw_keys"] = frozenset((key,) for key in existing)
    return context


def generate_suite(
    category: str,
    count: int,
    base_seed: int = 0,
    rows_per_source: int = 120,
) -> list[GeneratedWorkload]:
    """A batch of workloads, one per seed, as the experiments consume them."""
    return [
        generate_workload(category, seed=base_seed + index, rows_per_source=rows_per_source)
        for index in range(count)
    ]
