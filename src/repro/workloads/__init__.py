"""Workloads: paper scenarios, random workflow generator, synthetic data."""

from repro.workloads.datagen import (
    make_generic_rows,
    make_parts1_rows,
    make_parts2_rows,
)
from repro.workloads.generator import (
    CATEGORY_SPECS,
    CategorySpec,
    GeneratedWorkload,
    generate_suite,
    generate_workload,
)
from repro.workloads.scenarios import (
    Scenario,
    fig1_naming,
    fig1_workflow,
    fig4_context,
    fig4_states,
    dual_target_scenario,
    star_join_scenario,
    two_branch_scenario,
)

__all__ = [
    "Scenario",
    "fig1_workflow",
    "fig1_naming",
    "fig4_states",
    "fig4_context",
    "star_join_scenario",
    "dual_target_scenario",
    "two_branch_scenario",
    "CategorySpec",
    "CATEGORY_SPECS",
    "GeneratedWorkload",
    "generate_workload",
    "generate_suite",
    "make_generic_rows",
    "make_parts1_rows",
    "make_parts2_rows",
]
