"""Synthetic source data for scenarios and generated workloads.

The paper evaluates on workflows whose sources are operational tables like
``PARTS1(PKEY,SOURCE,DATE,COST)``; this module synthesizes such tables with
controllable cardinality, null rates, key domains and value ranges so the
execution engine can drive any workflow this library builds.
"""

from __future__ import annotations

import random

from repro.engine.rows import Row

__all__ = [
    "random_us_date",
    "make_parts1_rows",
    "make_parts2_rows",
    "make_generic_rows",
]

_MONTH_DAYS = {
    1: 28, 2: 28, 3: 28, 4: 28, 5: 28, 6: 28,
    7: 28, 8: 28, 9: 28, 10: 28, 11: 28, 12: 28,
}


def random_us_date(rng: random.Random, months: int = 6) -> str:
    """A random date in US ``MM/DD/YYYY`` format within ``months`` months."""
    month = rng.randint(1, min(12, months))
    day = rng.randint(1, _MONTH_DAYS[month])
    return f"{month:02d}/{day:02d}/2005"


def random_eu_date(rng: random.Random, months: int = 6) -> str:
    """A random date in European ``YYYY-MM-DD`` format (month precision)."""
    month = rng.randint(1, min(12, months))
    return f"2005-{month:02d}-01"


def make_parts1_rows(
    n: int, seed: int = 0, null_rate: float = 0.05, key_domain: int = 50
) -> list[Row]:
    """Rows for the Fig. 1 source PARTS1: monthly Euro costs, some NULLs."""
    rng = random.Random(seed)
    rows: list[Row] = []
    for _ in range(n):
        cost = None if rng.random() < null_rate else round(rng.uniform(10, 500), 2)
        rows.append(
            {
                "PKEY": rng.randrange(key_domain),
                "SOURCE": "S1",
                "DATE": random_eu_date(rng),
                "ECOST_M": cost,
            }
        )
    return rows


def make_parts2_rows(
    n: int, seed: int = 1, key_domain: int = 50
) -> list[Row]:
    """Rows for the Fig. 1 source PARTS2: daily Dollar costs, US dates."""
    rng = random.Random(seed)
    departments = ("D1", "D2", "D3")
    rows: list[Row] = []
    for _ in range(n):
        # Day pinned to 01 so that, after the A2E conversion, the daily US
        # dates line up with PARTS1's month-precision European dates and
        # the monthly aggregation groups both flows consistently.
        month = rng.randint(1, 6)
        rows.append(
            {
                "PKEY": rng.randrange(key_domain),
                "SOURCE": "S2",
                "DATE": f"{month:02d}/01/2005",
                "DEPT": rng.choice(departments),
                "DCOST": round(rng.uniform(10, 600), 2),
            }
        )
    return rows


def make_generic_rows(
    n: int,
    seed: int,
    source_name: str,
    value_attrs: tuple[str, ...] = ("V1", "V2", "V3"),
    key_domain: int = 200,
    null_rate: float = 0.05,
    value_range: tuple[float, float] = (0.0, 100.0),
) -> list[Row]:
    """Rows for generated workloads: KEY / SRC / DATE / value attributes.

    The first value attribute receives NULLs at ``null_rate`` (exercising
    not-null checks); all values are uniform in ``value_range`` so a
    selection ``V >= t`` has selectivity ``1 - t/range``.
    """
    rng = random.Random(seed)
    low, high = value_range
    rows: list[Row] = []
    for _ in range(n):
        row: Row = {
            "KEY": rng.randrange(key_domain),
            "SRC": source_name,
            "DATE": random_us_date(rng),
        }
        for index, attr in enumerate(value_attrs):
            if index == 0 and rng.random() < null_rate:
                row[attr] = None
            else:
                row[attr] = round(rng.uniform(low, high), 4)
        rows.append(row)
    return rows
