"""Hand-built scenarios: the paper's figures plus workflow-shape variety.

``fig1_workflow`` reconstructs the running example — two part suppliers,
one American, feeding a European warehouse — with the reference attribute
names section 3.1 prescribes: American and European dates share ``DATE``
(used only as groupers / equality keys), while Dollar and Euro costs get
distinct names (``DCOST`` / ``ECOST``), and the *monthly* Euro cost —
PARTS1's granularity and the aggregation's output — is ``ECOST_M``.

``fig4_*`` builds the three states of the Fig. 4 cost example (surrogate
keys and a selection around a union) that motivates DIS and FAC.

The remaining scenarios exercise graph shapes beyond the running example:
``star_join_scenario`` (a JOIN binary), ``dual_target_scenario`` (source
fan-out into two target pipelines), and ``two_branch_scenario`` (compact
enough for full exhaustive search).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.activity import Activity
from repro.core.attributes import NamingRegistry
from repro.core.recordset import RecordSet, RecordSetKind
from repro.core.schema import Schema
from repro.core.workflow import ETLWorkflow
from repro.engine.operators import EngineContext, default_scalar_functions
from repro.engine.rows import Row
from repro.templates import builtin as t
from repro.workloads.datagen import make_generic_rows, make_parts1_rows, make_parts2_rows

__all__ = [
    "Scenario",
    "fig1_workflow",
    "fig1_naming",
    "fig4_states",
    "fig4_context",
    "star_join_scenario",
    "dual_target_scenario",
    "two_branch_scenario",
]


@dataclass
class Scenario:
    """A workflow bundled with everything needed to run it on data."""

    workflow: ETLWorkflow
    context: EngineContext
    make_data: Callable[..., dict[str, list[Row]]]
    description: str = ""
    merge_constraints: tuple[tuple[str, str], ...] = ()
    extras: dict = field(default_factory=dict)


def fig1_naming() -> NamingRegistry:
    """The reference-name mapping of the running example (section 3.1)."""
    registry = NamingRegistry()
    registry.register("PARTS1.PKEY", "part key", "PKEY")
    registry.register("PARTS2.PKEY", "part key", "PKEY")
    registry.register("PARTS1.SOURCE", "supplier id", "SOURCE")
    registry.register("PARTS2.SOURCE", "supplier id", "SOURCE")
    # American and European dates share one reference name: downstream
    # treats them equivalently as groupers (paper, section 3.1).
    registry.register("PARTS1.DATE", "supply date", "DATE")
    registry.register("PARTS2.DATE", "supply date", "DATE")
    registry.register("PARTS2.DEPT", "department", "DEPT")
    # Dollar and Euro costs are different entities (selection on Euros!).
    registry.register("PARTS2.COST", "per-delivery cost in dollars", "DCOST")
    registry.register("<$2E output>", "per-delivery cost in euros", "ECOST")
    # PARTS1 stores monthly figures; the aggregation produces the same
    # real-world entity, so both map to ECOST_M.
    registry.register("PARTS1.COST", "monthly cost in euros", "ECOST_M")
    return registry


def fig1_workflow(
    threshold: float = 100.0,
    parts1_cardinality: float = 1000,
    parts2_cardinality: float = 3000,
) -> Scenario:
    """The initial state of Fig. 1, numbered exactly as in the paper.

    Node priorities: 1=PARTS1, 2=PARTS2, 3=NN(ECOST_M), 4=$2E, 5=A2E,
    6=γ_SUM, 7=U, 8=σ, 9=DW — so the state signature is
    ``((1.3)//(2.4.5.6)).7.8.9``.
    """
    wf = ETLWorkflow()
    parts1 = wf.add_node(
        RecordSet(
            "1",
            "PARTS1",
            Schema(["PKEY", "SOURCE", "DATE", "ECOST_M"]),
            RecordSetKind.SOURCE,
            cardinality=parts1_cardinality,
        )
    )
    parts2 = wf.add_node(
        RecordSet(
            "2",
            "PARTS2",
            Schema(["PKEY", "SOURCE", "DATE", "DEPT", "DCOST"]),
            RecordSetKind.SOURCE,
            cardinality=parts2_cardinality,
        )
    )
    not_null = wf.add_node(
        Activity(
            "3",
            t.NOT_NULL,
            {"attr": "ECOST_M"},
            selectivity=0.95,
            name="NN(ECOST_M)",
        )
    )
    dollars_to_euros = wf.add_node(
        Activity(
            "4",
            t.FUNCTION_APPLY,
            {
                "function": "dollar_to_euro",
                "inputs": ("DCOST",),
                "output": "ECOST",
                "injective": True,
            },
            selectivity=1.0,
            name="$2E(DCOST)",
        )
    )
    american_to_european = wf.add_node(
        Activity(
            "5",
            t.FUNCTION_APPLY,
            {
                "function": "date_us_to_eu",
                "inputs": ("DATE",),
                "output": "DATE",
                "injective": True,
            },
            selectivity=1.0,
            name="A2E(DATE)",
        )
    )
    aggregate = wf.add_node(
        Activity(
            "6",
            t.AGGREGATION,
            {
                "group_by": ("PKEY", "SOURCE", "DATE"),
                "measure": "ECOST",
                "agg": "sum",
                "output": "ECOST_M",
            },
            selectivity=0.30,
            name="γSUM(ECOST->ECOST_M)",
        )
    )
    union = wf.add_node(Activity("7", t.UNION, {}, name="U"))
    select = wf.add_node(
        Activity(
            "8",
            t.SELECTION,
            {"attr": "ECOST_M", "op": ">=", "value": threshold},
            selectivity=0.60,
            name=f"σ(ECOST_M>={threshold:g})",
        )
    )
    warehouse = wf.add_node(
        RecordSet(
            "9",
            "DW",
            Schema(["PKEY", "SOURCE", "DATE", "ECOST_M"]),
            RecordSetKind.TARGET,
        )
    )
    wf.add_edge(parts1, not_null)
    wf.add_edge(parts2, dollars_to_euros)
    wf.add_edge(dollars_to_euros, american_to_european)
    wf.add_edge(american_to_european, aggregate)
    wf.add_edge(not_null, union, port=0)
    wf.add_edge(aggregate, union, port=1)
    wf.add_edge(union, select)
    wf.add_edge(select, warehouse)

    context = EngineContext(scalar_functions=default_scalar_functions())

    def make_data(seed: int = 0, n1: int = 200, n2: int = 600) -> dict[str, list[Row]]:
        return {
            "PARTS1": make_parts1_rows(n1, seed=seed),
            "PARTS2": make_parts2_rows(n2, seed=seed + 1),
        }

    return Scenario(
        workflow=wf,
        context=context,
        make_data=make_data,
        description=(
            "Fig. 1 running example: PARTS1 (monthly, Euros) and PARTS2 "
            "(daily, Dollars, US dates) populating DW(PKEY,SOURCE,DATE,ECOST_M)"
        ),
        extras={"naming": fig1_naming()},
    )


# -- Fig. 4: the DIS / FAC cost example ------------------------------------------------


def _fig4_base_nodes(cardinality: float) -> dict:
    """Shared node builders for the three Fig. 4 states."""
    schema = Schema(["KEY", "SRC", "VAL"])
    out_schema = Schema(["SKEY", "SRC", "VAL"])
    return {
        "schema": schema,
        "out_schema": out_schema,
        "r1": lambda: RecordSet("1", "R1", schema, RecordSetKind.SOURCE, cardinality),
        "r2": lambda: RecordSet("2", "R2", schema, RecordSetKind.SOURCE, cardinality),
        "sk": lambda node_id: Activity(
            node_id,
            t.SURROGATE_KEY,
            # lookup_size is a physical annotation: the physical planner
            # only considers a hash lookup feasible when the table fits.
            {
                "key_attr": "KEY",
                "skey_attr": "SKEY",
                "lookup": "skeys",
                "lookup_size": 1000,
            },
            selectivity=1.0,
            name="SK",
        ),
        "sigma": lambda node_id: Activity(
            node_id,
            t.SELECTION,
            {"attr": "VAL", "op": ">=", "value": 50.0},
            selectivity=0.50,
            name="σ(VAL>=50)",
        ),
        "union": lambda: Activity("5", t.UNION, {}, name="U"),
        "dw": lambda: RecordSet("9", "DW", out_schema, RecordSetKind.TARGET),
    }


def fig4_states(cardinality: float = 8) -> dict[str, ETLWorkflow]:
    """The three states of Fig. 4 (n = 8 rows per flow in the paper).

    * ``initial`` — SK on each branch, union, selection after the union;
    * ``distributed`` — the selection DIS-ed into both branches and swapped
      before the SKs (paper case 2);
    * ``factorized`` — additionally the two SKs FAC-ed into one after the
      union (paper case 3).
    """
    states: dict[str, ETLWorkflow] = {}

    # Case 1: SK twice, selection after the union.
    nodes = _fig4_base_nodes(cardinality)
    wf = ETLWorkflow()
    r1, r2 = wf.add_node(nodes["r1"]()), wf.add_node(nodes["r2"]())
    sk1, sk2 = wf.add_node(nodes["sk"]("3")), wf.add_node(nodes["sk"]("4"))
    union = wf.add_node(nodes["union"]())
    sigma = wf.add_node(nodes["sigma"]("6"))
    dw = wf.add_node(nodes["dw"]())
    wf.add_edge(r1, sk1)
    wf.add_edge(r2, sk2)
    wf.add_edge(sk1, union, port=0)
    wf.add_edge(sk2, union, port=1)
    wf.add_edge(union, sigma)
    wf.add_edge(sigma, dw)
    states["initial"] = wf

    # Case 2: selection distributed into both branches, before the SKs.
    nodes = _fig4_base_nodes(cardinality)
    wf = ETLWorkflow()
    r1, r2 = wf.add_node(nodes["r1"]()), wf.add_node(nodes["r2"]())
    sig1, sig2 = wf.add_node(nodes["sigma"]("6_1")), wf.add_node(nodes["sigma"]("6_2"))
    sk1, sk2 = wf.add_node(nodes["sk"]("3")), wf.add_node(nodes["sk"]("4"))
    union = wf.add_node(nodes["union"]())
    dw = wf.add_node(nodes["dw"]())
    wf.add_edge(r1, sig1)
    wf.add_edge(r2, sig2)
    wf.add_edge(sig1, sk1)
    wf.add_edge(sig2, sk2)
    wf.add_edge(sk1, union, port=0)
    wf.add_edge(sk2, union, port=1)
    wf.add_edge(union, dw)
    states["distributed"] = wf

    # Case 3: selections in the branches, a single factorized SK after U.
    nodes = _fig4_base_nodes(cardinality)
    wf = ETLWorkflow()
    r1, r2 = wf.add_node(nodes["r1"]()), wf.add_node(nodes["r2"]())
    sig1, sig2 = wf.add_node(nodes["sigma"]("6_1")), wf.add_node(nodes["sigma"]("6_2"))
    union = wf.add_node(nodes["union"]())
    sk = wf.add_node(nodes["sk"]("3"))
    dw = wf.add_node(nodes["dw"]())
    wf.add_edge(r1, sig1)
    wf.add_edge(r2, sig2)
    wf.add_edge(sig1, union, port=0)
    wf.add_edge(sig2, union, port=1)
    wf.add_edge(union, sk)
    wf.add_edge(sk, dw)
    states["factorized"] = wf

    return states


def fig4_context(key_domain: int = 1000) -> EngineContext:
    """Engine context with the surrogate-key lookup the Fig. 4 states use."""
    context = EngineContext(scalar_functions=default_scalar_functions())
    context.lookups["skeys"] = {key: 10_000 + key for key in range(key_domain)}
    return context


def star_join_scenario(
    orders_cardinality: float = 5000, customers_cardinality: float = 400
) -> Scenario:
    """A star-schema load: orders joined with a customer dimension.

    Exercises the JOIN binary activity: a primary-key violation check on
    the join key sits *after* the join in the initial design and can be
    distributed into both branches (its functionality, CUSTKEY, exists on
    both sides); the amount filter upstream of nothing can only be pushed
    within the fact branch by swaps.  Demonstrates the paper's machinery
    on a binary activity other than union.
    """
    wf = ETLWorkflow()
    orders = wf.add_node(
        RecordSet(
            "1",
            "ORDERS",
            Schema(["OID", "CUSTKEY", "DATE", "AMOUNT"]),
            RecordSetKind.SOURCE,
            cardinality=orders_cardinality,
        )
    )
    customers = wf.add_node(
        RecordSet(
            "2",
            "CUSTOMERS",
            Schema(["CUSTKEY", "SEGMENT", "BALANCE"]),
            RecordSetKind.SOURCE,
            cardinality=customers_cardinality,
        )
    )
    convert = wf.add_node(
        Activity(
            "3",
            t.FUNCTION_APPLY,
            {
                "function": "scale_double",
                "inputs": ("AMOUNT",),
                "output": "NET",
                "injective": True,
            },
            name="f(AMOUNT->NET)",
        )
    )
    amount_filter = wf.add_node(
        Activity(
            "4",
            t.SELECTION,
            {"attr": "NET", "op": ">=", "value": 20.0},
            selectivity=0.5,
            name="σ(NET>=20)",
        )
    )
    segment_filter = wf.add_node(
        Activity(
            "5",
            t.SELECTION,
            {"attr": "SEGMENT", "op": "==", "value": "GOLD"},
            selectivity=0.3,
            name="σ(SEGMENT=GOLD)",
        )
    )
    join = wf.add_node(
        Activity(
            "6",
            t.JOIN,
            {"on": ("CUSTKEY",)},
            selectivity=1.0 / customers_cardinality,
            name="⋈(CUSTKEY)",
        )
    )
    key_check = wf.add_node(
        Activity(
            "7",
            t.PK_CHECK,
            {"key_attrs": ("CUSTKEY",), "reference": "blocked_keys"},
            selectivity=0.9,
            name="PK(CUSTKEY)",
        )
    )
    dw = wf.add_node(
        RecordSet(
            "9",
            "FACT_ORDERS",
            Schema(["OID", "CUSTKEY", "DATE", "NET", "SEGMENT", "BALANCE"]),
            RecordSetKind.TARGET,
        )
    )
    wf.add_edge(orders, convert)
    wf.add_edge(convert, amount_filter)
    wf.add_edge(customers, segment_filter)
    wf.add_edge(amount_filter, join, port=0)
    wf.add_edge(segment_filter, join, port=1)
    wf.add_edge(join, key_check)
    wf.add_edge(key_check, dw)
    wf.validate()
    wf.propagate_schemas()

    context = EngineContext(scalar_functions=default_scalar_functions())
    context.references["blocked_keys"] = frozenset({(1,), (2,), (3,)})

    def make_data(seed: int = 0, n_orders: int = 300, n_customers: int = 60):
        import random as _random

        rng = _random.Random(seed)
        customers_rows = [
            {
                "CUSTKEY": key,
                "SEGMENT": rng.choice(["GOLD", "SILVER", "BRONZE"]),
                "BALANCE": round(rng.uniform(-100, 1000), 2),
            }
            for key in range(n_customers)
        ]
        orders_rows = [
            {
                "OID": i,
                "CUSTKEY": rng.randrange(n_customers),
                "DATE": f"{rng.randint(1, 6):02d}/01/2005",
                "AMOUNT": round(rng.uniform(1, 100), 2),
            }
            for i in range(n_orders)
        ]
        return {"ORDERS": orders_rows, "CUSTOMERS": customers_rows}

    return Scenario(
        workflow=wf,
        context=context,
        make_data=make_data,
        description="Star-schema join load (orders ⋈ customers)",
    )


def dual_target_scenario(cardinality: float = 8000) -> Scenario:
    """One source feeding two independent target pipelines.

    A single extract populates both a detail table (filtered) and a
    monthly summary (aggregated, thresholded) — recordset fan-out, which
    the paper's graph model allows (a recordset may provide several
    consumers).  Each pipeline optimizes independently; the state
    signature is the ``//``-join of the per-target signatures.

    Built with :class:`~repro.core.builder.WorkflowBuilder`.
    """
    from repro.core.builder import WorkflowBuilder

    b = WorkflowBuilder()
    src = b.source(
        "ORDERS", ["OID", "REGION", "DATE", "AMOUNT"], cardinality=cardinality
    )
    # Pipeline 1: detail rows, cleansing written after the conversion.
    detail_tail = b.chain(
        src,
        b.activity(
            "function_apply",
            {
                "function": "scale_double",
                "inputs": ("AMOUNT",),
                "output": "NET",
                "injective": True,
            },
            name="f(AMOUNT->NET)",
        ),
        b.activity("not_null", {"attr": "NET"}, selectivity=0.95),
        b.activity(
            "selection",
            {"attr": "NET", "op": ">=", "value": 10.0},
            selectivity=0.4,
            name="σ(NET>=10)",
        ),
    )
    b.target("DW_DETAIL", ["OID", "REGION", "DATE", "NET"], provider=detail_tail)

    # Pipeline 2: monthly revenue with a post-aggregation threshold.
    summary_tail = b.chain(
        src,
        b.activity(
            "function_apply",
            {
                "function": "scale_double",
                "inputs": ("AMOUNT",),
                "output": "NET",
                "injective": True,
            },
            name="f2(AMOUNT->NET)",
        ),
        b.activity(
            "aggregation",
            {
                "group_by": ("REGION", "DATE"),
                "measure": "NET",
                "agg": "sum",
                "output": "REVENUE",
            },
            selectivity=0.05,
            name="γSUM(NET->REVENUE)",
        ),
        b.activity(
            "selection",
            {"attr": "REVENUE", "op": ">=", "value": 100.0},
            selectivity=0.7,
            name="σ(REVENUE>=100)",
        ),
    )
    b.target("DW_MONTHLY", ["REGION", "DATE", "REVENUE"], provider=summary_tail)
    workflow = b.build()

    context = EngineContext(scalar_functions=default_scalar_functions())

    def make_data(seed: int = 0, n: int = 400) -> dict[str, list[Row]]:
        import random as _random

        rng = _random.Random(seed)
        rows = [
            {
                "OID": i,
                "REGION": rng.choice(["EU", "US"]),
                "DATE": f"2005-{rng.randint(1, 6):02d}-01",
                "AMOUNT": None if rng.random() < 0.03 else round(rng.uniform(1, 80), 2),
            }
            for i in range(n)
        ]
        return {"ORDERS": rows}

    return Scenario(
        workflow=workflow,
        context=context,
        make_data=make_data,
        description="One extract, two targets: detail table + monthly summary",
    )


def two_branch_scenario(
    cardinality: float = 100, selectivity: float = 0.4
) -> Scenario:
    """A compact two-branch scenario small enough for exhaustive search.

    Two generic sources, a filter and a Dollar->Euro conversion per branch,
    a union, and a late selection — rich enough to exercise SWA, FAC and
    DIS, small enough that ES terminates in seconds.
    """
    schema = Schema(["KEY", "SRC", "DATE", "V1", "V2", "V3"])
    wf = ETLWorkflow()
    s1 = wf.add_node(
        RecordSet("1", "SRC1", schema, RecordSetKind.SOURCE, cardinality)
    )
    s2 = wf.add_node(
        RecordSet("2", "SRC2", schema, RecordSetKind.SOURCE, cardinality)
    )
    convert1 = wf.add_node(
        Activity(
            "3",
            t.FUNCTION_APPLY,
            {
                "function": "scale_double",
                "inputs": ("V1",),
                "output": "W1",
                "injective": True,
            },
            name="f(V1->W1)/a",
        )
    )
    convert2 = wf.add_node(
        Activity(
            "4",
            t.FUNCTION_APPLY,
            {
                "function": "scale_double",
                "inputs": ("V1",),
                "output": "W1",
                "injective": True,
            },
            name="f(V1->W1)/b",
        )
    )
    filter1 = wf.add_node(
        Activity(
            "5",
            t.SELECTION,
            {"attr": "V2", "op": ">=", "value": 40.0},
            selectivity=0.6,
            name="σ(V2>=40)/a",
        )
    )
    filter2 = wf.add_node(
        Activity(
            "6",
            t.NOT_NULL,
            {"attr": "V1"},
            selectivity=0.95,
            name="NN(V1)",
        )
    )
    union = wf.add_node(Activity("7", t.UNION, {}, name="U"))
    late_filter = wf.add_node(
        Activity(
            "8",
            t.SELECTION,
            {"attr": "V3", "op": "<=", "value": 100.0 * selectivity},
            selectivity=selectivity,
            name="σ(V3)",
        )
    )
    dw = wf.add_node(
        RecordSet(
            "9",
            "DW",
            Schema(["KEY", "SRC", "DATE", "W1", "V2", "V3"]),
            RecordSetKind.TARGET,
        )
    )
    wf.add_edge(s1, convert1)
    wf.add_edge(convert1, filter1)
    wf.add_edge(s2, filter2)
    wf.add_edge(filter2, convert2)
    wf.add_edge(filter1, union, port=0)
    wf.add_edge(convert2, union, port=1)
    wf.add_edge(union, late_filter)
    wf.add_edge(late_filter, dw)

    context = EngineContext(scalar_functions=default_scalar_functions())

    def make_data(seed: int = 0, n: int = 150) -> dict[str, list[Row]]:
        return {
            "SRC1": make_generic_rows(n, seed, "SRC1"),
            "SRC2": make_generic_rows(n, seed + 1, "SRC2"),
        }

    return Scenario(
        workflow=wf,
        context=context,
        make_data=make_data,
        description="Two-branch union scenario sized for exhaustive search",
    )
