"""Table 2 — visited states / improvement / time — as a runnable experiment.

Run with::

    python -m repro.experiments.table2 [workflows_per_category]

Prints the reproduced table next to the paper's reported values.
"""

from __future__ import annotations

import sys

from repro.experiments.harness import ExperimentConfig, run_experiment
from repro.experiments.reporting import format_table2

__all__ = ["main"]


def main(workflows_per_category: int = 3) -> str:
    config = ExperimentConfig(workflows_per_category=workflows_per_category)
    records = run_experiment(config)
    report = format_table2(records)
    print(report)
    return report


if __name__ == "__main__":
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    main(count)
