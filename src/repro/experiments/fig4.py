"""The Fig. 4 cost example: DIS and FAC can reduce the cost of a state.

The paper prices the three designs (SK twice + late σ; σ distributed and
pushed before the SKs; σ distributed + SK factorized) with ``n`` per
selection and ``n·log2 n`` per surrogate key, ignoring the union's cost,
and reports c1 = 56, c2 = 32, c3 = 24 for n = 8 rows per flow and a 50 %
selection.

Applying the stated formulas consistently (σ after the union processes
*both* flows; the factorized SK processes the union's output) yields
c1 = 64, c2 = 32, c3 = 40 — the paper's own c2 matches, while its c1/c3
arithmetic does not follow from its formulas (see EXPERIMENTS.md).  The
qualitative claim reproduces either way: **both** DIS and FAC beat the
initial design, and this module reports both the union-free and the
full-cost numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.activity import Activity
from repro.core.cost import ProcessedRowsCostModel, estimate
from repro.core.workflow import ETLWorkflow
from repro.workloads import fig4_states

__all__ = ["Fig4Row", "run_fig4", "format_fig4"]

PAPER_COSTS = {"initial": 56.0, "distributed": 32.0, "factorized": 24.0}


@dataclass(frozen=True)
class Fig4Row:
    """Costs of one Fig. 4 case."""

    case: str
    cost_total: float
    cost_without_union: float
    paper_cost: float


def _cost_without_union(workflow: ETLWorkflow, model) -> float:
    report = estimate(workflow, model)
    total = 0.0
    for node, cost in report.node_costs.items():
        if isinstance(node, Activity) and node.template.name == "union":
            continue
        total += cost
    return total


def run_fig4(cardinality: float = 8) -> list[Fig4Row]:
    """Cost the three Fig. 4 states under the processed-rows model."""
    model = ProcessedRowsCostModel()
    rows: list[Fig4Row] = []
    for case, workflow in fig4_states(cardinality).items():
        rows.append(
            Fig4Row(
                case=case,
                cost_total=estimate(workflow, model).total,
                cost_without_union=_cost_without_union(workflow, model),
                paper_cost=PAPER_COSTS[case],
            )
        )
    return rows


def format_fig4(rows: list[Fig4Row]) -> str:
    lines = [
        "Fig. 4: optimization example (n=8 rows per flow, sel(σ)=50%)",
        f"{'case':<14}{'cost':>8}{'cost w/o U':>12}{'paper':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row.case:<14}{row.cost_total:>8.0f}"
            f"{row.cost_without_union:>12.0f}{row.paper_cost:>8.0f}"
        )
    initial = next(r for r in rows if r.case == "initial")
    for case in ("distributed", "factorized"):
        row = next(r for r in rows if r.case == case)
        verdict = "reduces" if row.cost_total < initial.cost_total else "DOES NOT reduce"
        lines.append(f"{case} {verdict} the initial cost (paper: reduces)")
    return "\n".join(lines)
