"""Shared experiment runner for the paper's evaluation (section 4.2).

The paper's setup: 40 ETL workflows in three categories (small ≈ 20,
medium ≈ 40, large ≈ 70 activities), each optimized by ES, HS and
HS-Greedy; ES gets a hard budget (the authors let it run up to 40 hours
and report "did not terminate" for medium/large).  This module runs the
same experiment at configurable scale and collects one
:class:`RunRecord` per (workflow, algorithm).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.core.search import (
    HSConfig,
    OptimizationResult,
    exhaustive_search,
    greedy_search,
    heuristic_search,
)
from repro.exceptions import ReproError
from repro.workloads import generate_suite
from repro.workloads.generator import GeneratedWorkload

__all__ = ["ExperimentConfig", "RunRecord", "run_category", "run_experiment", "best_known_costs"]

#: The paper's three workload categories.
PAPER_CATEGORIES = ("small", "medium", "large")


@dataclass(frozen=True)
class ExperimentConfig:
    """Scale and budgets of one experiment run.

    Defaults are laptop-sized: a handful of workflows per category and a
    state budget for ES instead of the paper's 40-hour wall.  Shapes — who
    wins, by how much, visited-state ratios — are what must reproduce.
    """

    categories: tuple[str, ...] = PAPER_CATEGORIES
    workflows_per_category: int = 3
    base_seed: int = 1
    #: ES state budgets per category (None = unbudgeted).
    es_max_states: dict[str, int] = field(
        default_factory=lambda: {
            "tiny": 50_000,
            "small": 8_000,
            "medium": 3_000,
            "large": 1_500,
        }
    )
    es_max_seconds: float | None = 120.0
    hs_config: HSConfig | None = None


@dataclass(frozen=True)
class RunRecord:
    """One algorithm run on one workflow."""

    category: str
    seed: int
    activity_count: int
    algorithm: str
    initial_cost: float
    best_cost: float
    improvement_percent: float
    visited_states: int
    elapsed_seconds: float
    completed: bool

    @classmethod
    def from_result(
        cls, workload: GeneratedWorkload, result: OptimizationResult
    ) -> "RunRecord":
        return cls(
            category=workload.category,
            seed=workload.seed,
            activity_count=workload.activity_count,
            algorithm=result.algorithm,
            initial_cost=result.initial_cost,
            best_cost=result.best_cost,
            improvement_percent=result.improvement_percent,
            visited_states=result.visited_states,
            elapsed_seconds=result.elapsed_seconds,
            completed=result.completed,
        )


def run_algorithm(
    workload: GeneratedWorkload, algorithm: str, config: ExperimentConfig
) -> RunRecord:
    """Run one algorithm on one workload under the experiment budgets."""
    if algorithm == "ES":
        result = exhaustive_search(
            workload.workflow,
            max_states=config.es_max_states.get(workload.category),
            max_seconds=config.es_max_seconds,
        )
    elif algorithm == "HS":
        result = heuristic_search(workload.workflow, config=config.hs_config)
    elif algorithm == "HS-Greedy":
        result = greedy_search(workload.workflow, config=config.hs_config)
    else:
        raise ReproError(f"unknown algorithm {algorithm!r}")
    return RunRecord.from_result(workload, result)


def run_category(
    category: str,
    config: ExperimentConfig,
    algorithms: Iterable[str] = ("ES", "HS", "HS-Greedy"),
) -> list[RunRecord]:
    """All (workflow, algorithm) runs of one category."""
    workloads = generate_suite(
        category, config.workflows_per_category, base_seed=config.base_seed
    )
    records: list[RunRecord] = []
    for workload in workloads:
        for algorithm in algorithms:
            records.append(run_algorithm(workload, algorithm, config))
    return records


def run_experiment(config: ExperimentConfig | None = None) -> list[RunRecord]:
    """The full Tables 1+2 experiment."""
    config = config if config is not None else ExperimentConfig()
    records: list[RunRecord] = []
    for category in config.categories:
        records.extend(run_category(category, config))
    return records


def best_known_costs(records: list[RunRecord]) -> dict[tuple[str, int], float]:
    """Best cost any algorithm reached per workflow — Table 1's reference.

    For small workflows this is the (budgeted-)ES optimum; for medium and
    large the paper likewise compares against "the best solution that ES
    has produced when it stopped", generalized here to the best seen.
    """
    reference: dict[tuple[str, int], float] = {}
    for record in records:
        key = (record.category, record.seed)
        if key not in reference or record.best_cost < reference[key]:
            reference[key] = record.best_cost
    return reference
