"""Regenerate the paper's full evaluation in one run.

Runs Tables 1 and 2 and the Fig. 4 example at the requested scale and
prints (optionally writes) a single consolidated report with the paper's
values alongside — the evaluation section of EXPERIMENTS.md, recomputed.

Usage::

    python -m repro.experiments.full_paper [workflows_per_category] [output.md]
"""

from __future__ import annotations

import sys
import time

from repro.experiments.fig4 import format_fig4, run_fig4
from repro.experiments.harness import ExperimentConfig, run_experiment
from repro.experiments.reporting import format_table1, format_table2

__all__ = ["main"]


def main(
    workflows_per_category: int = 3, output_path: str | None = None
) -> str:
    started = time.perf_counter()
    config = ExperimentConfig(workflows_per_category=workflows_per_category)
    records = run_experiment(config)
    sections = [
        "# Reproduced evaluation — Optimizing ETL Processes in Data Warehouses",
        "",
        f"Scale: {workflows_per_category} workflows per category; "
        f"ES budgets {config.es_max_states} states.",
        "",
        "```",
        format_table1(records),
        "```",
        "",
        "```",
        format_table2(records),
        "```",
        "",
        "```",
        format_fig4(run_fig4()),
        "```",
        "",
        f"_Total experiment time: {time.perf_counter() - started:.0f}s._",
    ]
    report = "\n".join(sections)
    print(report)
    if output_path:
        with open(output_path, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"\nreport written to {output_path}")
    return report


if __name__ == "__main__":
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    path = sys.argv[2] if len(sys.argv) > 2 else None
    main(count, path)
