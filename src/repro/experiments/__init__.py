"""Experiment harness reproducing the paper's tables and figures."""

from repro.experiments.fig4 import Fig4Row, format_fig4, run_fig4
from repro.experiments.harness import (
    ExperimentConfig,
    RunRecord,
    best_known_costs,
    run_category,
    run_experiment,
)
from repro.experiments.reporting import (
    format_table1,
    format_table2,
    table1_rows,
    table2_rows,
)

__all__ = [
    "ExperimentConfig",
    "RunRecord",
    "run_category",
    "run_experiment",
    "best_known_costs",
    "table1_rows",
    "table2_rows",
    "format_table1",
    "format_table2",
    "Fig4Row",
    "run_fig4",
    "format_fig4",
]
