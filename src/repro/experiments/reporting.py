"""Formatting of the paper's tables from run records."""

from __future__ import annotations

from statistics import mean

from repro.experiments.harness import RunRecord, best_known_costs

__all__ = ["table1_rows", "table2_rows", "format_table1", "format_table2"]

_ALGORITHMS = ("ES", "HS", "HS-Greedy")


def _by_category(records: list[RunRecord]) -> dict[str, list[RunRecord]]:
    grouped: dict[str, list[RunRecord]] = {}
    for record in records:
        grouped.setdefault(record.category, []).append(record)
    return grouped


def table1_rows(records: list[RunRecord]) -> list[dict]:
    """Table 1: average quality of solution % per category and algorithm.

    Quality is ``best_known / best_found * 100`` per workflow, averaged.
    An asterisk (``starred``) marks categories where ES did not terminate
    within budget, matching the paper's footnote: values there compare to
    the best ES produced when it stopped (generalized to best-known).
    """
    reference = best_known_costs(records)
    rows: list[dict] = []
    for category, group in _by_category(records).items():
        row: dict = {"category": category}
        es_incomplete = any(
            not r.completed for r in group if r.algorithm == "ES"
        )
        row["starred"] = es_incomplete
        for algorithm in _ALGORITHMS:
            runs = [r for r in group if r.algorithm == algorithm]
            if not runs:
                row[algorithm] = None
                continue
            qualities = []
            for run in runs:
                best_known = reference[(run.category, run.seed)]
                if run.best_cost <= 0:
                    qualities.append(100.0)
                else:
                    qualities.append(
                        min(100.0, 100.0 * best_known / run.best_cost)
                    )
            row[algorithm] = mean(qualities)
        rows.append(row)
    return rows


def table2_rows(records: list[RunRecord]) -> list[dict]:
    """Table 2: avg visited states / improvement % / time per algorithm."""
    rows: list[dict] = []
    for category, group in _by_category(records).items():
        row: dict = {
            "category": category,
            "activities_avg": mean(r.activity_count for r in group),
        }
        for algorithm in _ALGORITHMS:
            runs = [r for r in group if r.algorithm == algorithm]
            if not runs:
                continue
            row[algorithm] = {
                "visited_states": mean(r.visited_states for r in runs),
                "improvement_percent": mean(r.improvement_percent for r in runs),
                "time_seconds": mean(r.elapsed_seconds for r in runs),
                "completed": all(r.completed for r in runs),
            }
        rows.append(row)
    return rows


def format_table1(records: list[RunRecord]) -> str:
    """Render Table 1 as fixed-width text next to the paper's values."""
    paper = {
        "small": {"ES": 100, "HS": 100, "HS-Greedy": 99},
        "medium": {"ES": None, "HS": 99, "HS-Greedy": 86},
        "large": {"ES": None, "HS": 98, "HS-Greedy": 62},
    }
    lines = [
        "Table 1. Quality of solution (avg %, per category)",
        f"{'category':<10}{'ES':>12}{'HS':>12}{'HS-Greedy':>12}   paper(ES/HS/Greedy)",
    ]
    for row in table1_rows(records):
        star = "*" if row["starred"] else ""
        cells = []
        for algorithm in _ALGORITHMS:
            value = row.get(algorithm)
            cells.append(f"{value:.0f}{star:>2}" if value is not None else "-")
        expected = paper.get(row["category"], {})
        paper_cells = "/".join(
            str(expected.get(a)) if expected.get(a) is not None else "-"
            for a in _ALGORITHMS
        )
        lines.append(
            f"{row['category']:<10}"
            + "".join(f"{c:>12}" for c in cells)
            + f"   {paper_cells}"
        )
    if any(row["starred"] for row in table1_rows(records)):
        lines.append("* ES did not exhaust the space within budget; values")
        lines.append("  compare to the best state any algorithm reached.")
    return "\n".join(lines)


def format_table2(records: list[RunRecord]) -> str:
    """Render Table 2 as fixed-width text next to the paper's values."""
    paper = {
        "small": {
            "ES": (28410, 78, 67812),
            "HS": (978, 78, 297),
            "HS-Greedy": (72, 76, 7),
        },
        "medium": {
            "ES": (45110, 52, 144000),
            "HS": (4929, 74, 703),
            "HS-Greedy": (538, 62, 87),
        },
        "large": {
            "ES": (34205, 45, 144000),
            "HS": (14100, 71, 2105),
            "HS-Greedy": (1214, 47, 584),
        },
    }
    lines = [
        "Table 2. Execution time, visited states, improvement over S0",
        f"{'category':<9}{'alg':<11}{'visited':>9}{'improv%':>9}{'time(s)':>9}"
        f"   paper: visited/improv%/time(s)",
    ]
    for row in table2_rows(records):
        for algorithm in _ALGORITHMS:
            cell = row.get(algorithm)
            if cell is None:
                continue
            mark = "" if cell["completed"] else "*"
            expected = paper.get(row["category"], {}).get(algorithm)
            expected_text = (
                f"{expected[0]}/{expected[1]}/{expected[2]}" if expected else "-"
            )
            lines.append(
                f"{row['category']:<9}{algorithm:<11}"
                f"{cell['visited_states']:>8.0f}{mark:<1}"
                f"{cell['improvement_percent']:>9.1f}"
                f"{cell['time_seconds']:>9.1f}"
                f"   {expected_text}"
            )
    lines.append("* algorithm stopped on budget (paper: 'did not terminate').")
    return "\n".join(lines)
