"""Batching primitives for the streaming execution engine.

The streaming executor (:mod:`repro.engine.streaming`) moves rows through
the workflow in fixed-size chunks instead of materializing every
intermediate flow.  This module holds the pieces that are useful on their
own:

* :class:`ExecutionBudget` — the caller-facing knob accepted by
  :meth:`repro.engine.executor.Executor.run`;
* :class:`ResidentLedger` — run-wide accounting of *resident rows* (rows
  the engine is currently holding in memory) with per-owner peaks;
* :class:`SpillableRowBuffer` — an append-only row store that overflows
  to disk once the run exceeds its resident-row budget;
* :func:`iter_batches` / :func:`rebatch` — chunking helpers.

Accounting model
----------------
"Resident rows" counts the engine's own working state: the source batch
currently in flight, batches emitted by blocking operators, buffered
fan-out flows, and blocking-operator accumulator entries (aggregation
groups, dedup survivors, join build rows, difference/intersection
counters).  Rows held by *derived* in-chain batches are bounded by the
source batch and are not double-counted; the final target lists returned
in :class:`~repro.engine.executor.ExecutionResult` are part of the API
contract and are likewise not charged against the budget.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field

from repro.engine.rows import Row
from repro.exceptions import ExecutionError

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "ExecutionBudget",
    "ResidentLedger",
    "SpillableRowBuffer",
    "StreamingMetrics",
    "iter_batches",
    "rebatch",
]

#: Default rows per batch for the streaming engine.
DEFAULT_BATCH_SIZE = 4096


@dataclass(frozen=True)
class ExecutionBudget:
    """What the streaming engine may hold in memory, and where to spill.

    Attributes:
        batch_size: rows per pipeline chunk (default 4096).
        max_resident_rows: soft ceiling on resident rows.  Spillable
            buffers flush to disk once the run is over this ceiling;
            non-spillable accumulator state (e.g. aggregation groups) is
            counted honestly but cannot shrink below its natural size.
            ``None`` disables spilling and only tracks the peak.
        spill_dir: directory for spill files; created on demand.  Without
            it, exceeding ``max_resident_rows`` keeps rows in memory (the
            ledger still records the true peak).
    """

    batch_size: int = DEFAULT_BATCH_SIZE
    max_resident_rows: int | None = None
    spill_dir: str | None = None

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ExecutionError(
                f"batch_size must be at least 1, got {self.batch_size}"
            )
        if self.max_resident_rows is not None and self.max_resident_rows < 1:
            raise ExecutionError(
                f"max_resident_rows must be at least 1, got "
                f"{self.max_resident_rows}"
            )


class ResidentLedger:
    """Run-wide resident-row accounting with per-owner peaks.

    Owners are node/activity ids; :meth:`acquire` / :meth:`release` are
    called by the streaming operators as rows enter and leave the engine's
    working state.  The global peak is what a run's
    :class:`StreamingMetrics` reports and what the bounded-memory bench
    asserts against the budget.
    """

    def __init__(self, limit: int | None = None):
        self.limit = limit
        self.current = 0
        self.peak = 0
        self.spilled_rows = 0
        self._owner_current: dict[str, int] = {}
        self._owner_peak: dict[str, int] = {}

    def acquire(self, owner: str, rows: int) -> None:
        if rows <= 0:
            return
        self.current += rows
        if self.current > self.peak:
            self.peak = self.current
        held = self._owner_current.get(owner, 0) + rows
        self._owner_current[owner] = held
        if held > self._owner_peak.get(owner, 0):
            self._owner_peak[owner] = held

    def release(self, owner: str, rows: int) -> None:
        if rows <= 0:
            return
        self.current -= rows
        self._owner_current[owner] = self._owner_current.get(owner, 0) - rows

    def note_spill(self, rows: int) -> None:
        self.spilled_rows += rows

    @property
    def over_budget(self) -> bool:
        return self.limit is not None and self.current > self.limit

    def peak_for(self, owner: str) -> int:
        return self._owner_peak.get(owner, 0)


class SpillableRowBuffer:
    """An append-only row store that spills to disk past the row budget.

    Appends go to an in-memory tail; whenever the run's ledger reports the
    budget exceeded (and a spill directory is configured), the tail is
    flushed to a pickle-framed spill file.  Iteration replays the spilled
    frames followed by the in-memory tail, preserving append order, so a
    buffer behaves exactly like the list it replaces.

    The buffer freezes on first read: the accumulate phase of a blocking
    operator is strictly before its emit phase, so appending after a read
    is a programming error, not a use case.
    """

    def __init__(
        self,
        ledger: ResidentLedger,
        owner: str,
        spill_dir: str | None = None,
    ):
        self._ledger = ledger
        self._owner = owner
        self._spill_dir = spill_dir
        self._memory: list[Row] = []
        self._spill_path: str | None = None
        self._spilled_count = 0
        self._frozen = False
        self._closed = False

    def __len__(self) -> int:
        return self._spilled_count + len(self._memory)

    @property
    def spilled(self) -> bool:
        return self._spilled_count > 0

    def extend(self, rows: Sequence[Row]) -> None:
        if self._frozen:
            raise ExecutionError(
                f"buffer for {self._owner!r} is frozen (already being read)"
            )
        if (
            self._spill_dir is not None
            and self._ledger.limit is not None
            and self._memory
            and self._ledger.current + len(rows) > self._ledger.limit
        ):
            # Shed what we already hold *before* admitting the new batch,
            # so the buffer itself never pushes the run past its budget.
            self._flush()
        self._memory.extend(rows)
        self._ledger.acquire(self._owner, len(rows))
        if self._ledger.over_budget and self._spill_dir is not None:
            self._flush()

    def _flush(self) -> None:
        if not self._memory:
            return
        if self._spill_path is None:
            os.makedirs(self._spill_dir, exist_ok=True)
            fd, self._spill_path = tempfile.mkstemp(
                prefix=f".{self._owner.replace(os.sep, '_')}.",
                suffix=".spill",
                dir=self._spill_dir,
            )
            os.close(fd)
        with open(self._spill_path, "ab") as handle:
            pickle.dump(self._memory, handle, protocol=pickle.HIGHEST_PROTOCOL)
        flushed = len(self._memory)
        self._spilled_count += flushed
        self._ledger.release(self._owner, flushed)
        self._ledger.note_spill(flushed)
        self._memory = []

    def rows(self) -> Iterator[Row]:
        """All rows in append order (spilled frames first, then memory)."""
        self._frozen = True
        if self._spill_path is not None:
            with open(self._spill_path, "rb") as handle:
                while True:
                    try:
                        frame = pickle.load(handle)
                    except EOFError:
                        break
                    yield from frame
        yield from self._memory

    def batches(self, batch_size: int) -> Iterator[list[Row]]:
        """The rows re-chunked to ``batch_size``; replayed disk frames are
        charged to the ledger only while in flight."""
        for batch in rebatch(self.rows(), batch_size):
            yield batch

    def close(self) -> None:
        """Release memory accounting and delete the spill file."""
        if self._closed:
            return
        self._closed = True
        self._ledger.release(self._owner, len(self._memory))
        self._memory = []
        if self._spill_path is not None:
            try:
                os.remove(self._spill_path)
            except OSError:
                pass
            self._spill_path = None


@dataclass
class StreamingMetrics:
    """What one streaming run measured about itself."""

    batch_size: int
    max_resident_rows: int | None
    peak_resident_rows: int = 0
    spilled_rows: int = 0
    #: Batches processed per (component) activity id.
    batches_by_activity: dict[str, int] = field(default_factory=dict)

    @property
    def within_budget(self) -> bool:
        return (
            self.max_resident_rows is None
            or self.peak_resident_rows <= self.max_resident_rows
        )


def iter_batches(rows: Sequence[Row], batch_size: int) -> Iterator[list[Row]]:
    """``rows`` chunked into lists of at most ``batch_size``."""
    for start in range(0, len(rows), batch_size):
        yield list(rows[start : start + batch_size])


def rebatch(rows: Iterable[Row], batch_size: int) -> Iterator[list[Row]]:
    """Re-chunk an arbitrary row iterable into ``batch_size`` lists."""
    batch: list[Row] = []
    for row in rows:
        batch.append(row)
        if len(batch) >= batch_size:
            yield batch
            batch = []
    if batch:
        yield batch
