"""Batching primitives for the streaming execution engine.

The streaming executor (:mod:`repro.engine.streaming`) moves rows through
the workflow in fixed-size chunks instead of materializing every
intermediate flow.  This module holds the pieces that are useful on their
own:

* :class:`ExecutionBudget` — the caller-facing knob accepted by
  :meth:`repro.engine.executor.Executor.run`;
* :class:`ResidentLedger` — run-wide accounting of *resident rows* (rows
  the engine is currently holding in memory) with per-owner peaks;
* :class:`SpillableRowBuffer` — an append-only batch store that
  overflows to disk once the run exceeds its resident-row budget;
* :func:`iter_batches` / :func:`rebatch` — chunking helpers.  Both
  accept either a :class:`~repro.engine.columnar.Batch` or a plain row
  sequence and always yield ``Batch`` (the deprecated row-list variants
  live behind ``iter_row_batches`` / ``rebatch_rows`` shims).

Accounting model
----------------
"Resident rows" counts the engine's own working state: the source batch
currently in flight, batches emitted by blocking operators, buffered
fan-out flows, and blocking-operator accumulator entries (aggregation
groups, dedup survivors, join build rows, difference/intersection
counters).  Rows held by *derived* in-chain batches are bounded by the
source batch and are not double-counted; the final target lists returned
in :class:`~repro.engine.executor.ExecutionResult` are part of the API
contract and are likewise not charged against the budget.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import warnings
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field

from repro.engine.columnar import Batch
from repro.engine.rows import Row
from repro.exceptions import ExecutionError

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "ExecutionBudget",
    "ResidentLedger",
    "SpillableRowBuffer",
    "StreamingMetrics",
    "iter_batches",
    "rebatch",
]

#: Default rows per batch for the streaming engine.
DEFAULT_BATCH_SIZE = 4096


@dataclass(frozen=True)
class ExecutionBudget:
    """What the streaming engine may hold in memory, and where to spill.

    Attributes:
        batch_size: rows per pipeline chunk (default 4096).
        max_resident_rows: soft ceiling on resident rows.  Spillable
            buffers flush to disk once the run is over this ceiling;
            non-spillable accumulator state (e.g. aggregation groups) is
            counted honestly but cannot shrink below its natural size.
            ``None`` disables spilling and only tracks the peak.
        spill_dir: directory for spill files; created on demand.  Without
            it, exceeding ``max_resident_rows`` keeps rows in memory (the
            ledger still records the true peak).
    """

    batch_size: int = DEFAULT_BATCH_SIZE
    max_resident_rows: int | None = None
    spill_dir: str | None = None

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ExecutionError(
                f"batch_size must be at least 1, got {self.batch_size}"
            )
        if self.max_resident_rows is not None and self.max_resident_rows < 1:
            raise ExecutionError(
                f"max_resident_rows must be at least 1, got "
                f"{self.max_resident_rows}"
            )


class ResidentLedger:
    """Run-wide resident-row accounting with per-owner peaks.

    Owners are node/activity ids; :meth:`acquire` / :meth:`release` are
    called by the streaming operators as rows enter and leave the engine's
    working state.  The global peak is what a run's
    :class:`StreamingMetrics` reports and what the bounded-memory bench
    asserts against the budget.
    """

    def __init__(self, limit: int | None = None):
        self.limit = limit
        self.current = 0
        self.peak = 0
        self.spilled_rows = 0
        self._owner_current: dict[str, int] = {}
        self._owner_peak: dict[str, int] = {}

    def acquire(self, owner: str, rows: int) -> None:
        if rows <= 0:
            return
        self.current += rows
        if self.current > self.peak:
            self.peak = self.current
        held = self._owner_current.get(owner, 0) + rows
        self._owner_current[owner] = held
        if held > self._owner_peak.get(owner, 0):
            self._owner_peak[owner] = held

    def release(self, owner: str, rows: int) -> None:
        if rows <= 0:
            return
        self.current -= rows
        self._owner_current[owner] = self._owner_current.get(owner, 0) - rows

    def note_spill(self, rows: int) -> None:
        self.spilled_rows += rows

    @property
    def over_budget(self) -> bool:
        return self.limit is not None and self.current > self.limit

    def peak_for(self, owner: str) -> int:
        return self._owner_peak.get(owner, 0)


class SpillableRowBuffer:
    """An append-only batch store that spills to disk past the row budget.

    Appends go to an in-memory tail of :class:`Batch` pieces; whenever
    the run's ledger reports the budget exceeded (and a spill directory
    is configured), the tail is flushed to a pickle-framed spill file.
    The spill format is **columnar**: a piece with a usable column view
    pickles as one ``('c', num_rows, columns)`` frame — one tuple of
    column lists instead of one dict per row — and a ragged piece falls
    back to a ``('r', rows)`` row frame.  Iteration replays the spilled
    frames followed by the in-memory tail, preserving append order, so a
    buffer behaves exactly like the flow list it replaces.

    The buffer freezes on first read: the accumulate phase of a blocking
    operator is strictly before its emit phase, so appending after a read
    is a programming error, not a use case.
    """

    def __init__(
        self,
        ledger: ResidentLedger,
        owner: str,
        spill_dir: str | None = None,
    ):
        self._ledger = ledger
        self._owner = owner
        self._spill_dir = spill_dir
        self._memory: list[Batch] = []
        self._memory_rows = 0
        self._spill_path: str | None = None
        self._spilled_count = 0
        self._frozen = False
        self._closed = False

    def __len__(self) -> int:
        return self._spilled_count + self._memory_rows

    @property
    def spilled(self) -> bool:
        return self._spilled_count > 0

    def extend(self, rows: Batch | Sequence[Row]) -> None:
        if self._frozen:
            raise ExecutionError(
                f"buffer for {self._owner!r} is frozen (already being read)"
            )
        piece = Batch.from_rows(rows)
        if not piece:
            return
        if (
            self._spill_dir is not None
            and self._ledger.limit is not None
            and self._memory
            and self._ledger.current + piece.num_rows > self._ledger.limit
        ):
            # Shed what we already hold *before* admitting the new batch,
            # so the buffer itself never pushes the run past its budget.
            self._flush()
        self._memory.append(piece)
        self._memory_rows += piece.num_rows
        self._ledger.acquire(self._owner, piece.num_rows)
        if self._ledger.over_budget and self._spill_dir is not None:
            self._flush()

    def _flush(self) -> None:
        if not self._memory:
            return
        if self._spill_path is None:
            os.makedirs(self._spill_dir, exist_ok=True)
            fd, self._spill_path = tempfile.mkstemp(
                prefix=f".{self._owner.replace(os.sep, '_')}.",
                suffix=".spill",
                dir=self._spill_dir,
            )
            os.close(fd)
        with open(self._spill_path, "ab") as handle:
            for piece in self._memory:
                columns = piece.columns_or_none()
                if columns is not None:
                    frame = ("c", piece.num_rows, columns)
                else:
                    frame = ("r", piece.to_rows())
                pickle.dump(frame, handle, protocol=pickle.HIGHEST_PROTOCOL)
        flushed = self._memory_rows
        self._spilled_count += flushed
        self._ledger.release(self._owner, flushed)
        self._ledger.note_spill(flushed)
        self._memory = []
        self._memory_rows = 0

    def _pieces(self) -> Iterator[Batch]:
        """All stored pieces in append order (spilled first, then memory)."""
        self._frozen = True
        if self._spill_path is not None:
            with open(self._spill_path, "rb") as handle:
                while True:
                    try:
                        frame = pickle.load(handle)
                    except EOFError:
                        break
                    if frame[0] == "c":
                        yield Batch.from_columns(frame[2], frame[1])
                    else:
                        yield Batch.from_rows(frame[1])
        yield from self._memory

    def rows(self) -> Iterator[Row]:
        """All rows in append order (spilled frames first, then memory)."""
        for piece in self._pieces():
            yield from piece.rows()

    def batches(self, batch_size: int) -> Iterator[Batch]:
        """The stored pieces re-chunked to ``batch_size`` batches.

        Re-chunking concatenates and slices whole pieces (columnar when
        the layouts line up), never round-tripping through row dicts;
        pieces already at ``batch_size`` pass through untouched.
        """
        pending: list[Batch] = []
        held = 0
        for piece in self._pieces():
            pending.append(piece)
            held += piece.num_rows
            while held >= batch_size:
                merged = (
                    pending[0] if len(pending) == 1 else Batch.concat(pending)
                )
                if merged.num_rows == batch_size:
                    yield merged
                    pending = []
                    held = 0
                else:
                    yield merged.slice(0, batch_size)
                    rest = merged.slice(batch_size, merged.num_rows)
                    pending = [rest]
                    held = rest.num_rows
        if held:
            yield pending[0] if len(pending) == 1 else Batch.concat(pending)

    def close(self) -> None:
        """Release memory accounting and delete the spill file.

        Idempotent, and guaranteed to run for engine-owned buffers: the
        streaming run closes every buffer it created in a ``finally``
        (shielded per buffer, so one failing close cannot leak another
        buffer's spill file).  Direct users get the same guarantee from
        the context-manager form, and :meth:`__del__` is a last-resort
        net for buffers dropped without either.
        """
        if self._closed:
            return
        self._closed = True
        self._ledger.release(self._owner, self._memory_rows)
        self._memory = []
        self._memory_rows = 0
        if self._spill_path is not None:
            try:
                os.remove(self._spill_path)
            except OSError:
                pass
            self._spill_path = None

    def __enter__(self) -> "SpillableRowBuffer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        # Interpreter-shutdown safety: attributes may not exist if
        # __init__ itself failed part-way.
        if getattr(self, "_closed", True):
            return
        try:
            self.close()
        except Exception:
            pass


@dataclass
class StreamingMetrics:
    """What one streaming run measured about itself."""

    batch_size: int
    max_resident_rows: int | None
    peak_resident_rows: int = 0
    spilled_rows: int = 0
    #: Batches processed per (component) activity id.
    batches_by_activity: dict[str, int] = field(default_factory=dict)

    @property
    def within_budget(self) -> bool:
        return (
            self.max_resident_rows is None
            or self.peak_resident_rows <= self.max_resident_rows
        )


def iter_batches(
    rows: Batch | Sequence[Row], batch_size: int
) -> Iterator[Batch]:
    """``rows`` (a :class:`Batch` or row sequence) chunked into batches
    of at most ``batch_size`` rows.  Always yields :class:`Batch`."""
    batch = rows if isinstance(rows, Batch) else Batch.from_rows(rows)
    for start in range(0, batch.num_rows, batch_size):
        yield batch.slice(start, start + batch_size)


def rebatch(
    rows: Batch | Iterable[Row], batch_size: int
) -> Iterator[Batch]:
    """Re-chunk an arbitrary row iterable (or a :class:`Batch`) into
    :class:`Batch` chunks of at most ``batch_size`` rows."""
    if isinstance(rows, Batch):
        yield from iter_batches(rows, batch_size)
        return
    chunk: list[Row] = []
    for row in rows:
        chunk.append(row)
        if len(chunk) >= batch_size:
            yield Batch.from_rows(chunk)
            chunk = []
    if chunk:
        yield Batch.from_rows(chunk)


def _iter_row_batches(
    rows: Sequence[Row], batch_size: int
) -> Iterator[list[Row]]:
    for batch in iter_batches(rows, batch_size):
        yield batch.to_rows()


def _rebatch_rows(
    rows: Iterable[Row], batch_size: int
) -> Iterator[list[Row]]:
    for batch in rebatch(rows, batch_size):
        yield batch.to_rows()


_ROW_HELPER_SHIMS = {
    "iter_row_batches": (_iter_row_batches, "iter_batches"),
    "rebatch_rows": (_rebatch_rows, "rebatch"),
}
_warned_row_helpers: set[str] = set()


def __getattr__(name: str):
    # Row-list compatibility shims: the pre-columnar engine chunked
    # flows into list[Row]; code that still needs bare row lists can
    # import these spellings, warned once per process.
    shim = _ROW_HELPER_SHIMS.get(name)
    if shim is not None:
        helper, replacement = shim
        if name not in _warned_row_helpers:
            _warned_row_helpers.add(name)
            warnings.warn(
                f"repro.engine.batches.{name} is deprecated; use "
                f"{replacement} (which yields Batch) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        return helper
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
