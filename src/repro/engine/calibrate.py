"""Selectivity calibration: measure on data, feed back into the model.

The paper's experiments use *assigned* selectivities.  In production the
natural refinement is to measure them: run the workflow on a data sample,
compute each activity's actual output/input ratio, and re-optimize with
the measured values.  Because activities are immutable descriptors, the
calibrated workflow is a rebuilt graph with replacement activities that
differ only in their ``selectivity``.
"""

from __future__ import annotations

import warnings
from collections.abc import Mapping

from repro.core.activity import Activity, CompositeActivity
from repro.core.workflow import ETLWorkflow, Node
from repro.engine.executor import ExecutionStats, Executor, iter_components
from repro.engine.rows import Row

__all__ = [
    "CalibrationWarning",
    "measure_selectivities",
    "apply_selectivities",
    "calibrate_workflow",
]


class CalibrationWarning(UserWarning):
    """A calibration run could not measure some activity's selectivity."""


def _ratio(stats: ExecutionStats, activity: Activity) -> float | None:
    processed = stats.rows_processed.get(activity.id)
    produced = stats.rows_output.get(activity.id)
    if not processed or produced is None:
        # No processed rows, or a processed count without a recorded
        # output (partial stats from an aborted run): unmeasurable.
        return None
    return produced / processed


def measure_selectivities(
    workflow: ETLWorkflow,
    source_data: Mapping[str, list[Row]],
    executor: Executor | None = None,
) -> dict[str, float]:
    """Measured selectivity per activity id (unary activities only).

    The declared-selectivity convention for binary activities differs per
    template (join: fraction of the cross product; difference: fraction of
    the left input), so only unary activities — where selectivity is
    unambiguously output/input — are measured; binary activities keep
    their declared values.

    Activities the sample never exercised (zero processed rows) cannot be
    measured; they keep their declared selectivity and a
    :class:`CalibrationWarning` is emitted so the staleness is visible
    instead of silent.
    """
    executor = executor if executor is not None else Executor()
    stats = executor.run(workflow, source_data).stats
    measured: dict[str, float] = {}
    for activity in workflow.activities():
        for component in iter_components(activity):
            if not component.is_unary:
                continue
            ratio = _ratio(stats, component)
            if ratio is not None:
                measured[component.id] = ratio
            else:
                warnings.warn(
                    f"activity {component.id!r} ({component.template.name}) "
                    f"could not be measured on the calibration sample "
                    f"(zero processed rows or no recorded output); keeping "
                    f"its declared selectivity {component.selectivity}",
                    CalibrationWarning,
                    stacklevel=2,
                )
    return measured


def apply_selectivities(
    workflow: ETLWorkflow, selectivities: Mapping[str, float]
) -> ETLWorkflow:
    """A rebuilt workflow whose activities carry the given selectivities.

    Activities absent from ``selectivities`` keep their declared values;
    recordsets are shared.  The result is structurally identical (same
    signature) to the input.
    """

    def rebuild(node: Node) -> Node:
        if not isinstance(node, Activity):
            return node
        if isinstance(node, CompositeActivity):
            return CompositeActivity(
                tuple(rebuild(c) for c in node.components)
            )
        new_selectivity = selectivities.get(node.id)
        if new_selectivity is None or new_selectivity == node.selectivity:
            return node
        return Activity(
            node.id,
            node.template,
            node.params,
            selectivity=new_selectivity,
            name=node.name,
        )

    rebuilt = ETLWorkflow()
    mapping: dict[Node, Node] = {}
    for node in workflow.topological_order():
        replacement = rebuild(node)
        rebuilt.add_node(replacement)
        mapping[node] = replacement
    for provider, consumer in workflow.graph.edges:
        rebuilt.add_edge(
            mapping[provider],
            mapping[consumer],
            port=workflow.edge_port(provider, consumer),
        )
    return rebuilt


def calibrate_workflow(
    workflow: ETLWorkflow,
    source_data: Mapping[str, list[Row]],
    executor: Executor | None = None,
) -> ETLWorkflow:
    """Measure selectivities on ``source_data`` and apply them."""
    measured = measure_selectivities(workflow, source_data, executor)
    return apply_selectivities(workflow, measured)
