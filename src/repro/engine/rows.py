"""Row utilities for the execution engine.

The engine represents a record as a plain ``dict`` keyed by reference
attribute names, and a flow as a ``list`` of such rows (bag semantics).
:func:`freeze_row` canonicalizes a row to a hashable value so that bags can
be compared as multisets regardless of row order — which is how empirical
workflow equivalence is defined (same input, same target *multisets*).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Mapping
from typing import Any

from repro.core.schema import Schema
from repro.exceptions import ExecutionError

__all__ = ["Row", "freeze_row", "as_multiset", "check_rows_match_schema"]

Row = dict[str, Any]


def freeze_row(row: Mapping[str, Any]) -> tuple:
    """A hashable, order-insensitive rendering of one row."""
    try:
        frozen = tuple(sorted(row.items()))
        hash(frozen)
    except TypeError as exc:
        raise ExecutionError(f"row contains unhashable values: {row!r}") from exc
    return frozen


def as_multiset(rows: Iterable[Mapping[str, Any]]) -> Counter:
    """The bag of rows as a Counter of frozen rows."""
    return Counter(freeze_row(row) for row in rows)


def check_rows_match_schema(
    rows: Iterable[Row], schema: Schema, where: str, start_index: int = 0
) -> None:
    """Verify every row carries exactly the schema's attributes.

    ``start_index`` offsets the row number reported in the error message —
    the streaming engine checks one batch at a time but reports the row's
    absolute position in the source flow.
    """
    expected = schema.as_set
    for index, row in enumerate(rows, start=start_index):
        present = set(row)
        if present != expected:
            missing = sorted(expected - present)
            extra = sorted(present - expected)
            raise ExecutionError(
                f"{where}: row {index} does not match schema {schema} "
                f"(missing {missing}, unexpected {extra})"
            )
