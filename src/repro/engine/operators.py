"""Executable semantics for the builtin templates.

Each template name maps to an operator — a function taking the activity,
its input flows, and the :class:`EngineContext` — grounding the "LDL
semantics" of the paper's template library in runnable Python.  Custom
templates register their operators the same way (see
``examples/custom_templates.py``).

The implementations deliberately use bag semantics and deterministic
iteration so that two equivalent workflows produce identical target
multisets on identical inputs.
"""

from __future__ import annotations

import operator as _op
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.core.activity import Activity
from repro.engine.rows import Row, freeze_row
from repro.exceptions import ExecutionError

__all__ = [
    "EngineContext",
    "OperatorRegistry",
    "default_registry",
    "default_scalar_functions",
]

Operator = Callable[[Activity, tuple[list[Row], ...], "EngineContext"], list[Row]]


@dataclass
class EngineContext:
    """External state an execution needs beyond the flows themselves.

    Attributes:
        scalar_functions: named row-wise functions for ``function_apply``
            (e.g. ``dollar_to_euro``).
        lookups: named surrogate-key lookup tables: production key ->
            surrogate; a callable is also accepted.
        references: named reference key sets for ``pk_check`` (the
            warehouse's existing primary keys).
    """

    scalar_functions: dict[str, Callable[..., Any]] = field(default_factory=dict)
    lookups: dict[str, Mapping[Any, Any] | Callable[[Any], Any]] = field(
        default_factory=dict
    )
    references: dict[str, frozenset] = field(default_factory=dict)

    def scalar(self, name: str) -> Callable[..., Any]:
        try:
            return self.scalar_functions[name]
        except KeyError:
            raise ExecutionError(f"unknown scalar function {name!r}") from None

    def lookup(self, name: str) -> Callable[[Any], Any]:
        try:
            table = self.lookups[name]
        except KeyError:
            raise ExecutionError(f"unknown lookup table {name!r}") from None
        if callable(table):
            return table

        def from_mapping(key: Any) -> Any:
            try:
                return table[key]
            except KeyError:
                raise ExecutionError(
                    f"lookup {name!r} has no surrogate for key {key!r}"
                ) from None

        return from_mapping

    def reference(self, name: str) -> frozenset:
        try:
            return self.references[name]
        except KeyError:
            raise ExecutionError(f"unknown reference key set {name!r}") from None


_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "<": _op.lt,
    "<=": _op.le,
    ">": _op.gt,
    ">=": _op.ge,
    "==": _op.eq,
    "!=": _op.ne,
}


def _exec_selection(
    activity: Activity, inputs: tuple[list[Row], ...], ctx: EngineContext
) -> list[Row]:
    attr = activity.params["attr"]
    compare = _COMPARATORS.get(activity.params["op"])
    if compare is None:
        raise ExecutionError(
            f"selection {activity.id}: unknown operator "
            f"{activity.params['op']!r}"
        )
    value = activity.params["value"]
    return [
        row
        for row in inputs[0]
        if row[attr] is not None and compare(row[attr], value)
    ]


def _exec_not_null(
    activity: Activity, inputs: tuple[list[Row], ...], ctx: EngineContext
) -> list[Row]:
    attr = activity.params["attr"]
    return [row for row in inputs[0] if row[attr] is not None]


def _exec_range_check(
    activity: Activity, inputs: tuple[list[Row], ...], ctx: EngineContext
) -> list[Row]:
    attr = activity.params["attr"]
    low = activity.params["low"]
    high = activity.params["high"]
    return [
        row
        for row in inputs[0]
        if row[attr] is not None and low <= row[attr] <= high
    ]


def _exec_pk_check(
    activity: Activity, inputs: tuple[list[Row], ...], ctx: EngineContext
) -> list[Row]:
    keys = tuple(activity.params["key_attrs"])
    existing = ctx.reference(activity.params["reference"])
    return [
        row
        for row in inputs[0]
        if tuple(row[k] for k in keys) not in existing
    ]


def _exec_projection(
    activity: Activity, inputs: tuple[list[Row], ...], ctx: EngineContext
) -> list[Row]:
    dropped = set(activity.params["attrs"])
    return [
        {attr: value for attr, value in row.items() if attr not in dropped}
        for row in inputs[0]
    ]


def _exec_function_apply(
    activity: Activity, inputs: tuple[list[Row], ...], ctx: EngineContext
) -> list[Row]:
    function = ctx.scalar(activity.params["function"])
    in_attrs = tuple(activity.params["inputs"])
    out_attr = activity.params["output"]
    in_place = out_attr in in_attrs
    drop_inputs = activity.params.get("drop_inputs", True) and not in_place
    result: list[Row] = []
    for row in inputs[0]:
        value = function(*(row[a] for a in in_attrs))
        new_row = dict(row)
        if drop_inputs:
            for attr in in_attrs:
                del new_row[attr]
        new_row[out_attr] = value
        result.append(new_row)
    return result


def _exec_surrogate_key(
    activity: Activity, inputs: tuple[list[Row], ...], ctx: EngineContext
) -> list[Row]:
    lookup = ctx.lookup(activity.params["lookup"])
    key_attr = activity.params["key_attr"]
    skey_attr = activity.params["skey_attr"]
    result: list[Row] = []
    for row in inputs[0]:
        new_row = dict(row)
        surrogate = lookup(new_row.pop(key_attr))
        new_row[skey_attr] = surrogate
        result.append(new_row)
    return result


def _sql_aggregate(kind: str, values: list) -> Any:
    """SQL-style aggregation: NULL measures are ignored.

    ``count`` counts non-NULL values (SQL ``COUNT(measure)``); the other
    aggregates return NULL for groups with no non-NULL measure.
    """
    non_null = [value for value in values if value is not None]
    if kind == "count":
        return len(non_null)
    if not non_null:
        return None
    if kind == "sum":
        return sum(non_null)
    if kind == "min":
        return min(non_null)
    if kind == "max":
        return max(non_null)
    if kind == "avg":
        return sum(non_null) / len(non_null)
    raise ExecutionError(f"unknown aggregate {kind!r}")


_AGGREGATE_KINDS = frozenset({"sum", "min", "max", "count", "avg"})


def _exec_aggregation(
    activity: Activity, inputs: tuple[list[Row], ...], ctx: EngineContext
) -> list[Row]:
    group_by = tuple(activity.params["group_by"])
    measure = activity.params["measure"]
    out_attr = activity.params["output"]
    kind = activity.params["agg"]
    if kind not in _AGGREGATE_KINDS:
        raise ExecutionError(
            f"aggregation {activity.id}: unknown aggregate {kind!r}"
        )
    groups: dict[tuple, list] = {}
    for row in inputs[0]:
        key = tuple(row[attr] for attr in group_by)
        groups.setdefault(key, []).append(row[measure])
    result: list[Row] = []
    for key in sorted(groups, key=repr):
        row = dict(zip(group_by, key))
        row[out_attr] = _sql_aggregate(kind, groups[key])
        result.append(row)
    return result


def _exec_distinct(
    activity: Activity, inputs: tuple[list[Row], ...], ctx: EngineContext
) -> list[Row]:
    """Keep one row per dedup-key value.

    The survivor is the minimum row under the frozen-row ordering, which
    makes the operator independent of input order — a property the swap
    correctness of `distinct` relies on.
    """
    keys = tuple(activity.params["group_by"])
    best: dict[tuple, tuple] = {}
    rows_by_frozen: dict[tuple, Row] = {}
    for row in inputs[0]:
        group = tuple(row[k] for k in keys)
        frozen = freeze_row(row)
        current = best.get(group)
        if current is None or frozen < current:
            best[group] = frozen
            rows_by_frozen[group] = row
    return [rows_by_frozen[group] for group in sorted(best, key=repr)]


def _exec_union(
    activity: Activity, inputs: tuple[list[Row], ...], ctx: EngineContext
) -> list[Row]:
    return list(inputs[0]) + list(inputs[1])


def _exec_join(
    activity: Activity, inputs: tuple[list[Row], ...], ctx: EngineContext
) -> list[Row]:
    on = tuple(activity.params["on"])
    left, right = inputs
    index: dict[tuple, list[Row]] = {}
    for row in right:
        index.setdefault(tuple(row[a] for a in on), []).append(row)
    result: list[Row] = []
    for row in left:
        for match in index.get(tuple(row[a] for a in on), ()):
            merged = dict(match)
            merged.update(row)  # shared attributes take the left value
            result.append(merged)
    return result


def _exec_difference(
    activity: Activity, inputs: tuple[list[Row], ...], ctx: EngineContext
) -> list[Row]:
    from collections import Counter

    remaining = Counter(freeze_row(row) for row in inputs[1])
    result: list[Row] = []
    for row in inputs[0]:
        frozen = freeze_row(row)
        if remaining[frozen] > 0:
            remaining[frozen] -= 1
        else:
            result.append(row)
    return result


def _exec_intersection(
    activity: Activity, inputs: tuple[list[Row], ...], ctx: EngineContext
) -> list[Row]:
    from collections import Counter

    available = Counter(freeze_row(row) for row in inputs[1])
    result: list[Row] = []
    for row in inputs[0]:
        frozen = freeze_row(row)
        if available[frozen] > 0:
            available[frozen] -= 1
            result.append(row)
    return result


#: The builtin operator for each builtin template, by identity.  The
#: columnar fuser compiles *these* semantics, so it must be able to tell
#: whether a registry still maps a builtin template to its builtin
#: operator (``replace=True`` re-registrations opt out of fusion).
_BUILTIN_OPERATORS: dict[str, Operator] = {
    "selection": _exec_selection,
    "not_null": _exec_not_null,
    "range_check": _exec_range_check,
    "pk_check": _exec_pk_check,
    "projection": _exec_projection,
    "function_apply": _exec_function_apply,
    "surrogate_key": _exec_surrogate_key,
    "aggregation": _exec_aggregation,
    "distinct": _exec_distinct,
    "union": _exec_union,
    "join": _exec_join,
    "difference": _exec_difference,
    "intersection": _exec_intersection,
}


class OperatorRegistry:
    """Template-name -> operator mapping, user-extensible."""

    def __init__(self) -> None:
        self._operators: dict[str, Operator] = {}

    def register(self, template_name: str, op: Operator, replace: bool = False) -> None:
        if template_name in self._operators and not replace:
            raise ExecutionError(
                f"operator for template {template_name!r} already registered"
            )
        self._operators[template_name] = op

    def get(self, template_name: str) -> Operator:
        try:
            return self._operators[template_name]
        except KeyError:
            raise ExecutionError(
                f"no operator registered for template {template_name!r}"
            ) from None

    def __contains__(self, template_name: object) -> bool:
        return template_name in self._operators

    def is_builtin(self, template_name: str) -> bool:
        """True when ``template_name`` still maps to its builtin operator."""
        builtin = _BUILTIN_OPERATORS.get(template_name)
        return (
            builtin is not None
            and self._operators.get(template_name) is builtin
        )


def default_registry() -> OperatorRegistry:
    """Operators for every builtin template."""
    registry = OperatorRegistry()
    for template_name, op in _BUILTIN_OPERATORS.items():
        registry.register(template_name, op)
    return registry


def default_scalar_functions() -> dict[str, Callable[..., Any]]:
    """A small library of scalar functions used by scenarios and tests.

    ``dollar_to_euro`` uses a fixed example rate; ``date_us_to_eu`` turns
    ``MM/DD/YYYY`` into ``YYYY-MM-DD`` (an injective reformat, the paper's
    A2E); the arithmetic helpers are injective monotone maps handy for
    generated workloads.
    """

    def dollar_to_euro(amount: float) -> float:
        return round(amount * 0.88, 6) if amount is not None else None

    def date_us_to_eu(date: str) -> str:
        if date is None:
            return None
        month, day, year = date.split("/")
        return f"{year}-{month}-{day}"

    def scale_double(value: float) -> float:
        return value * 2 if value is not None else None

    def shift_up(value: float) -> float:
        return value + 1000 if value is not None else None

    def negate(value: float) -> float:
        return -value if value is not None else None

    return {
        "dollar_to_euro": dollar_to_euro,
        "date_us_to_eu": date_us_to_eu,
        "scale_double": scale_double,
        "shift_up": shift_up,
        "negate": negate,
    }
