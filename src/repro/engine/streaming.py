"""Streaming batch-pipelined workflow execution.

The materializing executor holds every intermediate flow as a full list,
so memory — not processed rows — becomes the binding constraint long
before night-window-sized loads.  This module executes the same workflows
as generator pipelines over fixed-size :class:`~repro.engine.columnar.
Batch` chunks:

* **row-wise activities** (kind FILTER / FUNCTION) built from fusable
  builtin templates are compiled into a *fused* columnar kernel — one
  generated function per chain per column layout (see
  :mod:`repro.engine.columnar`) — and adjacent row-wise nodes join the
  same :class:`_FusedPipe`, so a linear chain costs one pass over the
  touched columns per batch instead of one dict rebuild per operator per
  row.  Custom row-wise templates (and builtin templates re-bound to
  custom operators) run the legacy row-at-a-time path unchanged;
* **blocking activities** run an explicit *accumulate-then-emit* phase:
  aggregation and distinct fold batches into O(groups) accumulators
  (column-wise when the batch has a usable column view), join buffers
  its build side (spilling to disk past the resident-row budget, then
  degrading to a block nested-loop probe — the same feasibility split as
  ``physical/implementations.py``), and difference/intersection fold the
  right input into a multiset counter;
* **fan-out nodes** (several consumers) are drained into a
  :class:`~repro.engine.batches.SpillableRowBuffer` each consumer replays;
* custom blocking/binary templates fall back to accumulate-everything +
  one call of their registered operator (correct, but unbounded — the
  price of an opaque operator).

The streaming path is row- and stats-identical to the materializing path:
same target lists, same per-activity (member-level, for composites)
``ExecutionStats`` counters.  That property is enforced by the
equivalence test suite, the fuzz oracles, and the Hypothesis columnar
conformance suite; setting ``REPRO_NO_COLUMNAR=1`` (see
:mod:`repro.core.flags`) forces every row-wise chain onto the legacy row
operators for differential debugging.
"""

from __future__ import annotations

import time
from collections import Counter
from collections.abc import Iterator, Mapping
from dataclasses import dataclass

from repro.core.activity import Activity, CompositeActivity
from repro.core.flags import columnar_enabled
from repro.obs import get_recorder
from repro.core.recordset import RecordSet
from repro.core.workflow import ETLWorkflow, Node
from repro.engine.batches import (
    ExecutionBudget,
    ResidentLedger,
    SpillableRowBuffer,
    StreamingMetrics,
    rebatch,
)
from repro.engine.columnar import (
    Batch,
    FusedChainRunner,
    frozen_rows,
    supports_columnar,
)
from repro.engine.executor import (
    ExecutionResult,
    ExecutionStats,
    iter_components,
)
from repro.engine.operators import _AGGREGATE_KINDS
from repro.engine.rows import Row, check_rows_match_schema, freeze_row
from repro.exceptions import ExecutionError
from repro.templates.base import ActivityKind

__all__ = ["ComponentMetrics", "execute_streaming", "is_row_wise"]

BatchIterator = Iterator[Batch]

_ROW_WISE_KINDS = (ActivityKind.FILTER, ActivityKind.FUNCTION)


def is_row_wise(component: Activity) -> bool:
    """True when the component may be applied batch-by-batch.

    FILTER and FUNCTION are row-wise *by the kind contract* (each output
    row depends on exactly one input row), so this extends to custom
    templates that declare those kinds.
    """
    return component.is_unary and component.kind in _ROW_WISE_KINDS


@dataclass
class ComponentMetrics:
    """Per-component measurements of one streaming run."""

    activity: Activity
    rows_in: int = 0
    rows_out: int = 0
    batches: int = 0
    seconds: float = 0.0


class _FusedPipe:
    """A chain of fused row-wise stages, possibly spanning node bounds.

    Construction happens during the topological pipeline build; adjacent
    row-wise nodes call :meth:`add` to join an existing (not yet
    iterated) pipe instead of stacking another generator on top, so a
    whole source-to-blocking stretch of the workflow runs as one
    compiled loop per batch.

    Stats mirror the legacy generators: a stage records a batch only
    when rows actually reached it — except stages inside a
    reject-collecting activity, which (like the old reject chain) record
    even empty intermediates.
    """

    def __init__(
        self,
        run: "_StreamRun",
        upstream: BatchIterator,
        components: tuple[Activity, ...],
        reject_activity: str | None = None,
    ):
        self.run = run
        self.upstream = upstream
        self.runner = FusedChainRunner(run.context, run.registry)
        self.components: list[Activity] = []
        self.started = False
        self.add(components, reject_activity)

    def add(
        self,
        components: tuple[Activity, ...],
        reject_activity: str | None = None,
    ) -> None:
        self.components.extend(components)
        self.runner.add(components, reject_activity)

    def __iter__(self) -> Iterator[Batch]:
        self.started = True
        metrics = [self.run.metric(c) for c in self.components]
        always = [
            self.runner.stage_in_reject_bound(i)
            for i in range(len(self.components))
        ]
        rejects = self.run.rejects
        for batch in self.upstream:
            begun = time.perf_counter()
            out, counts, dropped = self.runner.run_batch(batch)
            elapsed = time.perf_counter() - begun
            recorded = [
                i
                for i, (rows_in, _) in enumerate(counts)
                if rows_in > 0 or always[i]
            ]
            share = elapsed / len(recorded) if recorded else 0.0
            for i in recorded:
                rows_in, rows_out = counts[i]
                self.run._record(metrics[i], rows_in, rows_out, share)
            for activity_id, rows in dropped.items():
                if rows:
                    rejects[activity_id].extend(rows)
            if out:
                yield out


class _StreamRun:
    """One streaming execution: builds the pipeline, drains the targets."""

    def __init__(
        self,
        executor,
        workflow: ETLWorkflow,
        source_data: Mapping[str, list[Row]],
        budget: ExecutionBudget,
        check_schemas: bool,
        collect_rejects: bool,
    ):
        self.executor = executor
        self.workflow = workflow
        self.source_data = source_data
        self.budget = budget
        self.check_schemas = check_schemas
        self.collect_rejects = collect_rejects
        self.context = executor.context
        self.registry = executor.registry
        self.ledger = ResidentLedger(budget.max_resident_rows)
        self.stats = ExecutionStats()
        self.metrics: dict[str, ComponentMetrics] = {}
        self.rejects: dict[str, list[Row]] = {}
        self.columnar = columnar_enabled()
        self._buffers: list[SpillableRowBuffer] = []

    # -- bookkeeping ------------------------------------------------------

    def metric(self, component: Activity) -> ComponentMetrics:
        entry = self.metrics.get(component.id)
        if entry is None:
            entry = ComponentMetrics(activity=component)
            self.metrics[component.id] = entry
            # Materializing runs record every walked activity, even on
            # empty flows; register eagerly so the key sets match.
            self.stats.record(component.id, 0, 0)
        return entry

    def _record(
        self,
        metric: ComponentMetrics,
        rows_in: int,
        rows_out: int,
        seconds: float,
    ) -> None:
        metric.rows_in += rows_in
        metric.rows_out += rows_out
        metric.batches += 1
        metric.seconds += seconds
        self.stats.record(metric.activity.id, rows_in, rows_out)

    def _emit(self, owner: str, rows: Iterator[Row]) -> BatchIterator:
        """Re-chunk emitted rows, charging each batch while in flight."""
        for batch in rebatch(rows, self.budget.batch_size):
            self.ledger.acquire(owner, len(batch))
            try:
                yield batch
            finally:
                self.ledger.release(owner, len(batch))

    def _make_buffer(self, owner: str) -> SpillableRowBuffer:
        buffer = SpillableRowBuffer(
            self.ledger, owner, self.budget.spill_dir
        )
        self._buffers.append(buffer)
        return buffer

    # -- pipeline construction -------------------------------------------

    def execute(self) -> ExecutionResult:
        self.workflow.validate()
        self.workflow.propagate_schemas()
        started = time.perf_counter()
        targets: dict[str, list[Row]] = {}
        supply: dict[Node, list[BatchIterator]] = {}
        try:
            for node in self.workflow.topological_order():
                iterator = self._build_node(node, supply)
                if isinstance(node, RecordSet) and node.is_target:
                    flow: list[Row] = []
                    for batch in iterator:
                        flow.extend(batch)
                    targets[node.name] = flow
                    continue
                consumers = self.workflow.consumers(node)
                if len(consumers) <= 1:
                    supply[node] = [iterator]
                else:
                    # Fan-out: several consumers each need the full flow,
                    # potentially at different times — drain into a
                    # replayable (spillable) buffer.
                    buffer = self._make_buffer(f"fanout:{node.id}")
                    for batch in iterator:
                        buffer.extend(batch)
                    supply[node] = [
                        buffer.batches(self.budget.batch_size)
                        for _ in consumers
                    ]
        finally:
            for buffer in self._buffers:
                # Shield each close: one buffer failing to clean up must
                # not leak the spill files of the buffers after it.
                try:
                    buffer.close()
                except Exception:
                    pass
        elapsed = time.perf_counter() - started
        self.executor._streaming_finished(self.metrics, self.ledger, elapsed)
        metrics = StreamingMetrics(
            batch_size=self.budget.batch_size,
            max_resident_rows=self.budget.max_resident_rows,
            peak_resident_rows=self.ledger.peak,
            spilled_rows=self.ledger.spilled_rows,
            batches_by_activity={
                component_id: entry.batches
                for component_id, entry in self.metrics.items()
            },
        )
        return ExecutionResult(
            targets=targets,
            stats=self.stats,
            rejects=self.rejects,
            streaming=metrics,
        )

    def _claim(
        self, supply: dict[Node, list[BatchIterator]], provider: Node
    ) -> BatchIterator:
        return supply[provider].pop()

    def _build_node(
        self, node: Node, supply: dict[Node, list[BatchIterator]]
    ) -> BatchIterator:
        if isinstance(node, RecordSet):
            if node.is_source:
                try:
                    rows = self.source_data[node.name]
                except KeyError:
                    raise ExecutionError(
                        f"no data supplied for source {node.name!r}"
                    ) from None
                return self._source_batches(node, rows)
            return self._claim(supply, self.workflow.providers(node)[0])
        input_iters = tuple(
            self._claim(supply, provider)
            for provider in self.workflow.providers(node)
        )
        return self._activity_iter(node, input_iters)

    def _source_batches(self, node: RecordSet, rows: list[Row]) -> BatchIterator:
        where = f"source {node.name}"
        for offset, batch in self._checked_batches(node, rows, where):
            self.ledger.acquire(node.id, len(batch))
            try:
                yield batch
            finally:
                self.ledger.release(node.id, len(batch))

    def _checked_batches(
        self, node: RecordSet, rows: list[Row], where: str
    ) -> Iterator[tuple[int, Batch]]:
        """Source rows as schema-checked batches.

        When schema checking is on and the columnar path is enabled, the
        conformance check *is* the column build: every row must yield a
        value for every schema attribute (KeyError otherwise) and carry
        exactly ``len(schema)`` attributes — together that is set
        equality, at one column-build pass instead of a per-row set
        comparison, and downstream fused chains get a column view for
        free.  Any violation re-runs the row checker for its exact
        per-row error message.
        """
        batch_size = self.budget.batch_size
        fast = self.check_schemas and self.columnar
        attrs = node.schema.attrs
        width = len(attrs)
        for start in range(0, len(rows), batch_size):
            chunk = rows[start : start + batch_size]
            if fast:
                try:
                    if sum(map(len, chunk)) == width * len(chunk):
                        columns = {
                            name: [row[name] for row in chunk]
                            for name in attrs
                        }
                        yield start, Batch.from_columns(columns, len(chunk))
                        continue
                except KeyError:
                    pass
                # Some row diverges from the schema: the row checker
                # raises with the offending row's absolute index.
                check_rows_match_schema(
                    chunk, node.schema, where, start_index=start
                )
            elif self.check_schemas:
                check_rows_match_schema(
                    chunk, node.schema, where, start_index=start
                )
            yield start, Batch.from_rows(chunk)

    def _activity_iter(
        self, activity: Activity, input_iters: tuple[BatchIterator, ...]
    ) -> BatchIterator:
        from repro.engine.executor import Executor

        components = tuple(iter_components(activity))
        if (
            self.collect_rejects
            and Executor.is_filter_like(activity)
            and all(is_row_wise(component) for component in components)
        ):
            if self.columnar and all(
                supports_columnar(component, self.registry)
                for component in components
            ):
                return self._fused_iter(
                    components, input_iters[0], reject_activity=activity.id
                )
            return self._filter_chain_with_rejects(
                activity, components, input_iters[0]
            )
        if not isinstance(activity, CompositeActivity):
            return self._component_iter(activity, input_iters)
        iterator = input_iters[0]
        for component in components:
            iterator = self._component_iter(component, (iterator,))
        return iterator

    def _component_iter(
        self, component: Activity, input_iters: tuple[BatchIterator, ...]
    ) -> BatchIterator:
        self.metric(component)  # register before any batch flows
        if is_row_wise(component):
            if self.columnar and supports_columnar(component, self.registry):
                return self._fused_iter((component,), input_iters[0])
            return self._rowwise(component, input_iters[0])
        name = component.template.name
        if name == "aggregation":
            return self._aggregate(component, input_iters[0])
        if name == "distinct":
            return self._distinct(component, input_iters[0])
        if name == "union":
            return self._union(component, input_iters)
        if name == "join":
            return self._join(component, input_iters)
        if name in ("difference", "intersection"):
            return self._semi_anti(
                component, input_iters, keep=(name == "intersection")
            )
        return self._fallback(component, input_iters)

    # -- streaming operators ---------------------------------------------

    def _fused_iter(
        self,
        components: tuple[Activity, ...],
        upstream: BatchIterator,
        reject_activity: str | None = None,
    ) -> BatchIterator:
        """Fuse ``components`` onto ``upstream`` (extending an existing
        pipe when the upstream is one that has not started flowing)."""
        for component in components:
            self.metric(component)
        if reject_activity is not None:
            self.rejects.setdefault(reject_activity, [])
        if isinstance(upstream, _FusedPipe) and not upstream.started:
            upstream.add(components, reject_activity)
            return upstream
        return _FusedPipe(self, upstream, components, reject_activity)

    def _rowwise(
        self, component: Activity, upstream: BatchIterator
    ) -> BatchIterator:
        operator = self.registry.get(component.template.name)
        metric = self.metric(component)
        for batch in upstream:
            begun = time.perf_counter()
            rows = batch.to_rows()
            out = operator(component, (rows,), self.context)
            self._record(metric, len(rows), len(out), time.perf_counter() - begun)
            if out:
                yield Batch.from_rows(out)

    def _filter_chain_with_rejects(
        self,
        activity: Activity,
        components: tuple[Activity, ...],
        upstream: BatchIterator,
    ) -> BatchIterator:
        """A row-wise filter chain that also reports its dropped rows.

        Filters keep rows unmodified, so the per-batch bag difference
        concatenates to exactly the materializing path's whole-flow diff.
        """
        stages = [
            (
                self.metric(component),
                self.registry.get(component.template.name),
            )
            for component in components
        ]
        dropped = self.rejects.setdefault(activity.id, [])

        def pipeline() -> BatchIterator:
            for batch in upstream:
                rows = batch.to_rows()
                out = rows
                for metric, operator in stages:
                    begun = time.perf_counter()
                    produced = operator(
                        metric.activity, (out,), self.context
                    )
                    self._record(
                        metric, len(out), len(produced),
                        time.perf_counter() - begun,
                    )
                    out = produced
                kept = Counter(freeze_row(row) for row in out)
                for row in rows:
                    frozen = freeze_row(row)
                    if kept[frozen] > 0:
                        kept[frozen] -= 1
                    else:
                        dropped.append(row)
                if out:
                    yield Batch.from_rows(out)

        return pipeline()

    def _aggregate(
        self, component: Activity, upstream: BatchIterator
    ) -> BatchIterator:
        metric = self.metric(component)
        group_by = tuple(component.params["group_by"])
        measure = component.params["measure"]
        out_attr = component.params["output"]
        kind = component.params["agg"]
        if kind not in _AGGREGATE_KINDS:
            raise ExecutionError(
                f"aggregation {component.id}: unknown aggregate {kind!r}"
            )
        # Per group: [non-null count, running sum, min, max].  All five
        # aggregate kinds are decomposable over these, and the running
        # updates apply in arrival order, so the emitted values are
        # bit-identical to the materializing operator's.
        groups: dict[tuple, list] = {}
        try:
            for batch in upstream:
                begun = time.perf_counter()
                columns = batch.columns_or_none()
                if (
                    columns is not None
                    and measure in columns
                    and all(attr in columns for attr in group_by)
                ):
                    # Column-wise accumulate: zip the key columns and the
                    # measure column instead of building a dict per row.
                    measure_col = columns[measure]
                    if group_by:
                        key_iter = zip(*(columns[a] for a in group_by))
                    else:
                        key_iter = (() for _ in range(batch.num_rows))
                    pairs = zip(key_iter, measure_col)
                else:
                    pairs = (
                        (
                            tuple(row[attr] for attr in group_by),
                            row[measure],
                        )
                        for row in batch.rows()
                    )
                for key, value in pairs:
                    state = groups.get(key)
                    if state is None:
                        groups[key] = state = [0, 0, None, None]
                        self.ledger.acquire(component.id, 1)
                    if value is not None:
                        state[0] += 1
                        state[1] += value
                        if state[2] is None or value < state[2]:
                            state[2] = value
                        if state[3] is None or value > state[3]:
                            state[3] = value
                self._record(
                    metric, len(batch), 0, time.perf_counter() - begun
                )

            def emit() -> Iterator[Row]:
                for key in sorted(groups, key=repr):
                    count, total, minimum, maximum = groups[key]
                    if kind == "count":
                        value = count
                    elif count == 0:
                        value = None
                    elif kind == "sum":
                        value = total
                    elif kind == "min":
                        value = minimum
                    elif kind == "max":
                        value = maximum
                    else:  # avg
                        value = total / count
                    row = dict(zip(group_by, key))
                    row[out_attr] = value
                    yield row

            for batch in self._emit(component.id, emit()):
                begun = time.perf_counter()
                self._record(metric, 0, len(batch), time.perf_counter() - begun)
                yield batch
        finally:
            self.ledger.release(component.id, len(groups))

    def _frozen_batch(self, batch: Batch) -> Iterator[tuple[int, tuple]]:
        """Per-row ``(index, frozen_row)`` with the row path's hashability
        error (:func:`freeze_row` raises ``ExecutionError`` on unhashable
        values), computed column-wise when the batch allows it."""
        columns = batch.columns_or_none()
        if columns is None:
            for index, row in enumerate(batch.rows()):
                yield index, freeze_row(row)
            return
        for index, frozen in enumerate(frozen_rows(columns, batch.num_rows)):
            try:
                hash(frozen)
            except TypeError as exc:
                raise ExecutionError(
                    f"row contains unhashable values: {batch.row_at(index)!r}"
                ) from exc
            yield index, frozen

    def _distinct(
        self, component: Activity, upstream: BatchIterator
    ) -> BatchIterator:
        metric = self.metric(component)
        keys = tuple(component.params["group_by"])
        best: dict[tuple, tuple] = {}
        survivors: dict[tuple, Row] = {}
        try:
            for batch in upstream:
                begun = time.perf_counter()
                columns = batch.columns_or_none()
                if columns is not None and all(k in columns for k in keys):
                    key_cols = [columns[k] for k in keys]
                    for index, frozen in self._frozen_batch(batch):
                        group = tuple(col[index] for col in key_cols)
                        current = best.get(group)
                        if current is None:
                            self.ledger.acquire(component.id, 1)
                        if current is None or frozen < current:
                            best[group] = frozen
                            survivors[group] = batch.row_at(index)
                else:
                    for row in batch.rows():
                        group = tuple(row[k] for k in keys)
                        frozen = freeze_row(row)
                        current = best.get(group)
                        if current is None:
                            self.ledger.acquire(component.id, 1)
                        if current is None or frozen < current:
                            best[group] = frozen
                            survivors[group] = row
                self._record(
                    metric, len(batch), 0, time.perf_counter() - begun
                )
            emitted = (
                survivors[group] for group in sorted(best, key=repr)
            )
            for batch in self._emit(component.id, emitted):
                self._record(metric, 0, len(batch), 0.0)
                yield batch
        finally:
            self.ledger.release(component.id, len(best))

    def _union(
        self, component: Activity, input_iters: tuple[BatchIterator, ...]
    ) -> BatchIterator:
        metric = self.metric(component)
        for upstream in input_iters:
            for batch in upstream:
                self._record(metric, len(batch), len(batch), 0.0)
                yield batch

    def _join(
        self, component: Activity, input_iters: tuple[BatchIterator, ...]
    ) -> BatchIterator:
        metric = self.metric(component)
        on = tuple(component.params["on"])
        left, right = input_iters
        buffer = self._make_buffer(component.id)
        try:
            for batch in right:
                begun = time.perf_counter()
                buffer.extend(batch)
                self._record(metric, len(batch), 0, time.perf_counter() - begun)
            if not buffer.spilled:
                # Build side fits the budget: classic hash join (mirrors
                # the `hash_join` feasibility rule in physical/).
                index: dict[tuple, list[Row]] = {}
                for row in buffer.rows():
                    index.setdefault(
                        tuple(row[a] for a in on), []
                    ).append(row)
                for batch in left:
                    begun = time.perf_counter()
                    out: list[Row] = []
                    for row in batch.rows():
                        for match in index.get(
                            tuple(row[a] for a in on), ()
                        ):
                            merged = dict(match)
                            merged.update(row)
                            out.append(merged)
                    self._record(
                        metric, len(batch), len(out),
                        time.perf_counter() - begun,
                    )
                    if out:
                        yield Batch.from_rows(out)
            else:
                # Build side spilled: block nested-loop probe — one scan
                # of the spilled build side per probe batch, preserving
                # the hash join's (left-major, right-arrival) output
                # order exactly.
                for batch in left:
                    begun = time.perf_counter()
                    probe_rows = batch.to_rows()
                    probe_keys = [
                        tuple(row[a] for a in on) for row in probe_rows
                    ]
                    matches: list[list[Row]] = [[] for _ in probe_rows]
                    for build_row in buffer.rows():
                        build_key = tuple(build_row[a] for a in on)
                        for position, probe_key in enumerate(probe_keys):
                            if probe_key == build_key:
                                merged = dict(build_row)
                                merged.update(probe_rows[position])
                                matches[position].append(merged)
                    out = [row for rows in matches for row in rows]
                    self._record(
                        metric, len(batch), len(out),
                        time.perf_counter() - begun,
                    )
                    if out:
                        yield Batch.from_rows(out)
        finally:
            buffer.close()

    def _semi_anti(
        self,
        component: Activity,
        input_iters: tuple[BatchIterator, ...],
        keep: bool,
    ) -> BatchIterator:
        """difference (``keep=False``) / intersection (``keep=True``)."""
        metric = self.metric(component)
        left, right = input_iters
        counter: Counter = Counter()
        acquired = 0
        try:
            for batch in right:
                begun = time.perf_counter()
                for _, frozen in self._frozen_batch(batch):
                    if counter[frozen] == 0:
                        self.ledger.acquire(component.id, 1)
                        acquired += 1
                    counter[frozen] += 1
                self._record(metric, len(batch), 0, time.perf_counter() - begun)
            for batch in left:
                begun = time.perf_counter()
                kept_indices: list[int] = []
                for index, frozen in self._frozen_batch(batch):
                    if counter[frozen] > 0:
                        counter[frozen] -= 1
                        if keep:
                            kept_indices.append(index)
                    elif not keep:
                        kept_indices.append(index)
                self._record(
                    metric, len(batch), len(kept_indices),
                    time.perf_counter() - begun,
                )
                if kept_indices:
                    yield batch.select(kept_indices)
        finally:
            self.ledger.release(component.id, acquired)

    def _fallback(
        self, component: Activity, input_iters: tuple[BatchIterator, ...]
    ) -> BatchIterator:
        """Custom blocking/binary template: accumulate, apply, emit.

        Correct for any registered operator, but the accumulate phase is
        unbounded — an opaque operator gives the engine nothing to fold
        incrementally.
        """
        operator = self.registry.get(component.template.name)
        metric = self.metric(component)
        inputs: list[list[Row]] = []
        accumulated = 0
        try:
            for upstream in input_iters:
                flow: list[Row] = []
                for batch in upstream:
                    begun = time.perf_counter()
                    flow.extend(batch)
                    self.ledger.acquire(component.id, len(batch))
                    accumulated += len(batch)
                    self._record(
                        metric, len(batch), 0, time.perf_counter() - begun
                    )
                inputs.append(flow)
            begun = time.perf_counter()
            produced = operator(component, tuple(inputs), self.context)
            self._record(
                metric, 0, len(produced), time.perf_counter() - begun
            )
            yield from self._emit(component.id, iter(produced))
        finally:
            self.ledger.release(component.id, accumulated)


def execute_streaming(
    executor,
    workflow: ETLWorkflow,
    source_data: Mapping[str, list[Row]],
    budget: ExecutionBudget,
    check_schemas: bool = True,
    collect_rejects: bool = False,
) -> ExecutionResult:
    """Run ``workflow`` through the streaming pipeline under ``budget``."""
    run = _StreamRun(
        executor,
        workflow,
        source_data,
        budget,
        check_schemas=check_schemas,
        collect_rejects=collect_rejects,
    )
    with get_recorder().span(
        "engine.streaming", batch_size=budget.batch_size
    ):
        return run.execute()
