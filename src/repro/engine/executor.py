"""The workflow interpreter: runs an ETL workflow on concrete data.

This is the substrate the paper assumes but does not describe: something
that actually executes an ETL workflow.  The executor walks the graph in
topological order, feeds each activity the flows of its providers, applies
the operator registered for its template, and collects the rows arriving
at each target recordset.  It also counts the rows every activity
processes — the empirical counterpart of the paper's processed-rows cost
model, used by the ablation benchmarks to validate the model.

Two execution paths share that contract:

* **materializing** (the default): every intermediate flow is a full
  Python list — simple, and fine for test-sized data;
* **streaming** (pass an :class:`~repro.engine.batches.ExecutionBudget`):
  rows move through the graph in fixed-size batches via generator
  pipelines, blocking operators accumulate-then-emit with optional
  spill-to-disk, and memory is bounded by the budget instead of the data.
  Results and :class:`ExecutionStats` are identical between the paths.

Composite (MER'd) activities are unfolded through one shared helper,
:func:`iter_components`, so both paths report member-level row counts
identically.
"""

from __future__ import annotations

import warnings
from collections.abc import Iterator, Mapping
from dataclasses import dataclass, field

from repro.core.activity import Activity, CompositeActivity
from repro.core.recordset import RecordSet
from repro.core.workflow import ETLWorkflow
from repro.engine.batches import ExecutionBudget, StreamingMetrics
from repro.engine.operators import (
    EngineContext,
    OperatorRegistry,
    default_registry,
    default_scalar_functions,
)
from repro.engine.rows import Row, check_rows_match_schema
from repro.exceptions import ExecutionError
from repro.obs import Recorder, use_recorder

__all__ = [
    "ExecutionStats",
    "ExecutionResult",
    "Executor",
    "iter_components",
]

#: Sentinel distinguishing "keyword not passed" from an explicit value,
#: so a deprecated positional and its keyword can be caught as a clash.
_UNSET: object = object()

_warned_positional: set[str] = set()


def _resolve_run_args(
    method: str,
    legacy: tuple,
    names: tuple[str, ...],
    keywords: tuple,
    defaults: tuple,
) -> tuple:
    """Map deprecated positional ``run()`` arguments onto their keywords.

    All executors share the ``run(workflow, data, *, budget=...,
    recorder=..., ...)`` keyword shape; arguments beyond ``(workflow,
    data)`` passed positionally still land on the historical parameter
    order (``names``) but warn once per method — the same facade pattern
    :func:`repro.optimize` uses for its legacy budget spellings.
    """
    values = list(keywords)
    if legacy:
        if len(legacy) > len(names):
            raise TypeError(
                f"{method}() takes at most {2 + len(names)} positional "
                f"arguments ({2 + len(legacy)} given)"
            )
        if method not in _warned_positional:
            _warned_positional.add(method)
            warnings.warn(
                f"passing {method}() arguments positionally beyond "
                f"(workflow, source_data) is deprecated; pass "
                f"{', '.join(f'{name}=' for name in names[: len(legacy)])}"
                f"by keyword",
                DeprecationWarning,
                stacklevel=3,
            )
        for index, value in enumerate(legacy):
            if values[index] is not _UNSET:
                raise TypeError(
                    f"{method}() got multiple values for argument "
                    f"{names[index]!r}"
                )
            values[index] = value
    return tuple(
        default if value is _UNSET else value
        for value, default in zip(values, defaults)
    )


def iter_components(activity: Activity) -> Iterator[Activity]:
    """The executable parts of an activity, in chain order.

    A plain activity yields itself; a :class:`CompositeActivity` yields
    its (recursively flattened) members.  Both execution paths and the
    fuzz oracles walk composites through this single helper, so packaged
    groups report member-level stats consistently everywhere.
    """
    if isinstance(activity, CompositeActivity):
        for component in activity.components:
            yield from iter_components(component)
    else:
        yield activity


@dataclass
class ExecutionStats:
    """Row counters per activity (keyed by activity id)."""

    rows_processed: dict[str, int] = field(default_factory=dict)
    rows_output: dict[str, int] = field(default_factory=dict)

    @property
    def total_rows_processed(self) -> int:
        """Total processed rows — the empirical 'cost' of the run."""
        return sum(self.rows_processed.values())

    def record(self, activity_id: str, processed: int, produced: int) -> None:
        self.rows_processed[activity_id] = (
            self.rows_processed.get(activity_id, 0) + processed
        )
        self.rows_output[activity_id] = (
            self.rows_output.get(activity_id, 0) + produced
        )


@dataclass
class ExecutionResult:
    """Output of one workflow run.

    ``rejects`` is populated when the run was started with
    ``collect_rejects=True``: for every *filter* activity, the rows it
    dropped — the reject streams real ETL deployments route to error
    tables for inspection and replay.

    ``streaming`` is populated by streaming runs only: the batch size the
    run used, its peak resident rows, and how many rows were spilled.
    """

    targets: dict[str, list[Row]]
    stats: ExecutionStats
    rejects: dict[str, list[Row]] = field(default_factory=dict)
    streaming: StreamingMetrics | None = None


class Executor:
    """Runs workflows against in-memory source data.

    Args:
        context: scalar functions / lookups / reference key sets; defaults
            to a context holding the builtin scalar function library.
        registry: template-name -> operator mapping; defaults to the
            builtin operators.
        budget: default :class:`ExecutionBudget` applied to every
            :meth:`run` that does not pass its own — an executor built
            with a budget streams by default.
    """

    def __init__(
        self,
        context: EngineContext | None = None,
        registry: OperatorRegistry | None = None,
        budget: ExecutionBudget | None = None,
    ):
        if context is None:
            context = EngineContext(scalar_functions=default_scalar_functions())
        self.context = context
        self.registry = registry if registry is not None else default_registry()
        self.default_budget = budget

    def run(
        self,
        workflow: ETLWorkflow,
        source_data: Mapping[str, list[Row]],
        *legacy,
        check_schemas: bool = _UNSET,  # type: ignore[assignment]
        collect_rejects: bool = _UNSET,  # type: ignore[assignment]
        budget: ExecutionBudget | None = _UNSET,  # type: ignore[assignment]
        recorder: Recorder | None = None,
        shards: int | None = None,
    ) -> ExecutionResult:
        """Execute ``workflow`` on ``source_data`` (keyed by source name).

        With ``check_schemas`` (the default), every source flow is checked
        against its recordset's declared schema before the run — catching
        mismatches at the boundary instead of deep inside an operator.
        With ``collect_rejects``, every filter activity's dropped rows are
        gathered into ``ExecutionResult.rejects`` (keyed by activity id).
        With a ``budget`` (or a default budget on the executor), rows are
        streamed through the graph in batches instead of materialized.
        With a ``recorder``, that :class:`~repro.obs.Recorder` is active
        for the duration of the run (telemetry spans/counters land there).
        With ``shards`` > 1, the run is split into that many data-parallel
        streaming pipelines over range-partitioned sources (implies
        streaming; targets/stats/rejects stay byte-identical to serial —
        see :mod:`repro.engine.partition`), degrading to serial streaming
        with a warning when the workflow shape does not allow it.

        Arguments beyond ``(workflow, source_data)`` are keyword-only;
        the historical positional form still works but warns once.
        """
        check_schemas, collect_rejects, budget = _resolve_run_args(
            "Executor.run",
            legacy,
            ("check_schemas", "collect_rejects", "budget"),
            (check_schemas, collect_rejects, budget),
            (True, False, None),
        )
        if recorder is not None:
            with use_recorder(recorder):
                return self._run(
                    workflow, source_data, check_schemas, collect_rejects,
                    budget, shards,
                )
        return self._run(
            workflow, source_data, check_schemas, collect_rejects, budget,
            shards,
        )

    def _run(
        self,
        workflow: ETLWorkflow,
        source_data: Mapping[str, list[Row]],
        check_schemas: bool,
        collect_rejects: bool,
        budget: ExecutionBudget | None,
        shards: int | None = None,
    ) -> ExecutionResult:
        budget = budget if budget is not None else self.default_budget
        if shards is not None and shards > 1:
            from repro.engine.partition import execute_partitioned

            return execute_partitioned(
                self,
                workflow,
                source_data,
                # Sharding is a streaming mode: without an explicit
                # budget, shards run under the default batch size.
                budget if budget is not None else ExecutionBudget(),
                shards,
                check_schemas=check_schemas,
                collect_rejects=collect_rejects,
            )
        if budget is not None:
            from repro.engine.streaming import execute_streaming

            return execute_streaming(
                self,
                workflow,
                source_data,
                budget,
                check_schemas=check_schemas,
                collect_rejects=collect_rejects,
            )

        workflow.validate()
        workflow.propagate_schemas()

        flows: dict[object, list[Row]] = {}
        stats = ExecutionStats()
        targets: dict[str, list[Row]] = {}
        rejects: dict[str, list[Row]] = {}

        for node in workflow.topological_order():
            if isinstance(node, RecordSet):
                if node.is_source:
                    try:
                        rows = source_data[node.name]
                    except KeyError:
                        raise ExecutionError(
                            f"no data supplied for source {node.name!r}"
                        ) from None
                    if check_schemas:
                        check_rows_match_schema(
                            rows, node.schema, f"source {node.name}"
                        )
                    flows[node] = list(rows)
                else:
                    provider = workflow.providers(node)[0]
                    flows[node] = flows[provider]
                    if node.is_target:
                        targets[node.name] = flows[node]
                continue
            inputs = tuple(flows[p] for p in workflow.providers(node))
            flows[node] = self._run_activity(node, inputs, stats)
            if collect_rejects:
                self._collect_rejects(node, inputs, flows[node], rejects)
        return ExecutionResult(targets=targets, stats=stats, rejects=rejects)

    @staticmethod
    def is_filter_like(activity: Activity) -> bool:
        """True for plain filters and all-filter composites — the
        activities whose dropped rows :meth:`run` can report as rejects."""
        from repro.templates.base import ActivityKind

        return all(
            component.kind is ActivityKind.FILTER
            for component in iter_components(activity)
        )

    @staticmethod
    def _collect_rejects(
        activity: Activity,
        inputs: tuple[list[Row], ...],
        produced: list[Row],
        rejects: dict[str, list[Row]],
    ) -> None:
        """Record the rows a filter dropped (bag difference in − out).

        Composite activities report per component would require threading
        intermediate flows; the package is reported as one filter when
        *all* its components are filters.
        """
        from collections import Counter

        from repro.engine.rows import freeze_row

        if not Executor.is_filter_like(activity):
            return
        kept = Counter(freeze_row(row) for row in produced)
        dropped: list[Row] = []
        for row in inputs[0]:
            frozen = freeze_row(row)
            if kept[frozen] > 0:
                kept[frozen] -= 1
            else:
                dropped.append(row)
        rejects[activity.id] = dropped

    def _run_activity(
        self,
        activity: Activity,
        inputs: tuple[list[Row], ...],
        stats: ExecutionStats,
    ) -> list[Row]:
        """Run one (possibly composite) node by chaining its components."""
        if not isinstance(activity, CompositeActivity):
            return self._run_component(activity, inputs, stats)
        flow = inputs[0]
        for component in iter_components(activity):
            flow = self._run_component(component, (flow,), stats)
        return flow

    def _run_component(
        self,
        component: Activity,
        inputs: tuple[list[Row], ...],
        stats: ExecutionStats,
    ) -> list[Row]:
        """Run one non-composite activity (the unit both paths account in)."""
        operator = self.registry.get(component.template.name)
        produced = operator(component, inputs, self.context)
        stats.record(
            component.id,
            processed=sum(len(flow) for flow in inputs),
            produced=len(produced),
        )
        return produced

    def _streaming_finished(
        self,
        metrics: "dict[str, object]",
        ledger: object,
        total_seconds: float,
    ) -> None:
        """Hook called once per streaming run with per-component metrics.

        The base executor ignores it; :class:`~repro.engine.tracing.
        TracingExecutor` turns the metrics into a :class:`TraceReport`.
        """
