"""The workflow interpreter: runs an ETL workflow on concrete data.

This is the substrate the paper assumes but does not describe: something
that actually executes an ETL workflow.  The executor walks the graph in
topological order, feeds each activity the flows of its providers, applies
the operator registered for its template, and collects the rows arriving
at each target recordset.  It also counts the rows every activity
processes — the empirical counterpart of the paper's processed-rows cost
model, used by the ablation benchmarks to validate the model.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.core.activity import Activity, CompositeActivity
from repro.core.recordset import RecordSet
from repro.core.workflow import ETLWorkflow
from repro.engine.operators import (
    EngineContext,
    OperatorRegistry,
    default_registry,
    default_scalar_functions,
)
from repro.engine.rows import Row, check_rows_match_schema
from repro.exceptions import ExecutionError

__all__ = ["ExecutionStats", "ExecutionResult", "Executor"]


@dataclass
class ExecutionStats:
    """Row counters per activity (keyed by activity id)."""

    rows_processed: dict[str, int] = field(default_factory=dict)
    rows_output: dict[str, int] = field(default_factory=dict)

    @property
    def total_rows_processed(self) -> int:
        """Total processed rows — the empirical 'cost' of the run."""
        return sum(self.rows_processed.values())

    def record(self, activity_id: str, processed: int, produced: int) -> None:
        self.rows_processed[activity_id] = (
            self.rows_processed.get(activity_id, 0) + processed
        )
        self.rows_output[activity_id] = (
            self.rows_output.get(activity_id, 0) + produced
        )


@dataclass
class ExecutionResult:
    """Output of one workflow run.

    ``rejects`` is populated when the run was started with
    ``collect_rejects=True``: for every *filter* activity, the rows it
    dropped — the reject streams real ETL deployments route to error
    tables for inspection and replay.
    """

    targets: dict[str, list[Row]]
    stats: ExecutionStats
    rejects: dict[str, list[Row]] = field(default_factory=dict)


class Executor:
    """Runs workflows against in-memory source data.

    Args:
        context: scalar functions / lookups / reference key sets; defaults
            to a context holding the builtin scalar function library.
        registry: template-name -> operator mapping; defaults to the
            builtin operators.
    """

    def __init__(
        self,
        context: EngineContext | None = None,
        registry: OperatorRegistry | None = None,
    ):
        if context is None:
            context = EngineContext(scalar_functions=default_scalar_functions())
        self.context = context
        self.registry = registry if registry is not None else default_registry()

    def run(
        self,
        workflow: ETLWorkflow,
        source_data: Mapping[str, list[Row]],
        check_schemas: bool = True,
        collect_rejects: bool = False,
    ) -> ExecutionResult:
        """Execute ``workflow`` on ``source_data`` (keyed by source name).

        With ``check_schemas`` (the default), every source flow is checked
        against its recordset's declared schema before the run — catching
        mismatches at the boundary instead of deep inside an operator.
        With ``collect_rejects``, every filter activity's dropped rows are
        gathered into ``ExecutionResult.rejects`` (keyed by activity id).
        """
        workflow.validate()
        workflow.propagate_schemas()

        flows: dict[object, list[Row]] = {}
        stats = ExecutionStats()
        targets: dict[str, list[Row]] = {}
        rejects: dict[str, list[Row]] = {}

        for node in workflow.topological_order():
            if isinstance(node, RecordSet):
                if node.is_source:
                    try:
                        rows = source_data[node.name]
                    except KeyError:
                        raise ExecutionError(
                            f"no data supplied for source {node.name!r}"
                        ) from None
                    if check_schemas:
                        check_rows_match_schema(
                            rows, node.schema, f"source {node.name}"
                        )
                    flows[node] = list(rows)
                else:
                    provider = workflow.providers(node)[0]
                    flows[node] = flows[provider]
                    if node.is_target:
                        targets[node.name] = flows[node]
                continue
            inputs = tuple(flows[p] for p in workflow.providers(node))
            flows[node] = self._run_activity(node, inputs, stats)
            if collect_rejects:
                self._collect_rejects(node, inputs, flows[node], rejects)
        return ExecutionResult(targets=targets, stats=stats, rejects=rejects)

    @staticmethod
    def _collect_rejects(
        activity: Activity,
        inputs: tuple[list[Row], ...],
        produced: list[Row],
        rejects: dict[str, list[Row]],
    ) -> None:
        """Record the rows a filter dropped (bag difference in − out).

        Composite activities report per component would require threading
        intermediate flows; the package is reported as one filter when
        *all* its components are filters.
        """
        from collections import Counter

        from repro.core.activity import CompositeActivity
        from repro.engine.rows import freeze_row
        from repro.templates.base import ActivityKind

        if isinstance(activity, CompositeActivity):
            is_filter = all(
                component.kind is ActivityKind.FILTER
                for component in activity.components
            )
        else:
            is_filter = activity.kind is ActivityKind.FILTER
        if not is_filter:
            return
        kept = Counter(freeze_row(row) for row in produced)
        dropped: list[Row] = []
        for row in inputs[0]:
            frozen = freeze_row(row)
            if kept[frozen] > 0:
                kept[frozen] -= 1
            else:
                dropped.append(row)
        rejects[activity.id] = dropped

    def _run_activity(
        self,
        activity: Activity,
        inputs: tuple[list[Row], ...],
        stats: ExecutionStats,
    ) -> list[Row]:
        if isinstance(activity, CompositeActivity):
            flow = inputs[0]
            for component in activity.components:
                flow = self._run_activity(component, (flow,), stats)
            return flow
        operator = self.registry.get(activity.template.name)
        produced = operator(activity, inputs, self.context)
        stats.record(
            activity.id,
            processed=sum(len(flow) for flow in inputs),
            produced=len(produced),
        )
        return produced
