"""Execution engine: runs ETL workflows on in-memory data."""

from repro.engine.calibrate import (
    apply_selectivities,
    calibrate_workflow,
    measure_selectivities,
)
from repro.engine.checkpoint import (
    CheckpointingExecutor,
    CheckpointStore,
    SimulatedFailure,
)
from repro.engine.executor import ExecutionResult, ExecutionStats, Executor
from repro.engine.operators import (
    EngineContext,
    OperatorRegistry,
    default_registry,
    default_scalar_functions,
)
from repro.engine.rows import Row, as_multiset, freeze_row
from repro.engine.validate import RunEquivalenceReport, empirically_equivalent

__all__ = [
    "Executor",
    "ExecutionResult",
    "ExecutionStats",
    "CheckpointingExecutor",
    "CheckpointStore",
    "SimulatedFailure",
    "measure_selectivities",
    "apply_selectivities",
    "calibrate_workflow",
    "EngineContext",
    "OperatorRegistry",
    "default_registry",
    "default_scalar_functions",
    "Row",
    "freeze_row",
    "as_multiset",
    "RunEquivalenceReport",
    "empirically_equivalent",
]
