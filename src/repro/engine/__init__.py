"""Execution engine: runs ETL workflows on in-memory data."""

from repro.engine.batches import (
    DEFAULT_BATCH_SIZE,
    ExecutionBudget,
    ResidentLedger,
    SpillableRowBuffer,
    StreamingMetrics,
)
from repro.engine.calibrate import (
    CalibrationWarning,
    apply_selectivities,
    calibrate_workflow,
    measure_selectivities,
)
from repro.engine.checkpoint import (
    CheckpointingExecutor,
    CheckpointStore,
    PartialCheckpoint,
    SimulatedFailure,
)
from repro.engine.executor import (
    ExecutionResult,
    ExecutionStats,
    Executor,
    iter_components,
)
from repro.engine.operators import (
    EngineContext,
    OperatorRegistry,
    default_registry,
    default_scalar_functions,
)
from repro.engine.rows import Row, as_multiset, freeze_row
from repro.engine.validate import (
    RunEquivalenceReport,
    StreamingConformanceReport,
    empirically_equivalent,
    streaming_matches_materializing,
)

__all__ = [
    "Executor",
    "ExecutionResult",
    "ExecutionStats",
    "iter_components",
    "DEFAULT_BATCH_SIZE",
    "ExecutionBudget",
    "ResidentLedger",
    "SpillableRowBuffer",
    "StreamingMetrics",
    "CheckpointingExecutor",
    "CheckpointStore",
    "PartialCheckpoint",
    "SimulatedFailure",
    "CalibrationWarning",
    "measure_selectivities",
    "apply_selectivities",
    "calibrate_workflow",
    "EngineContext",
    "OperatorRegistry",
    "default_registry",
    "default_scalar_functions",
    "Row",
    "freeze_row",
    "as_multiset",
    "RunEquivalenceReport",
    "StreamingConformanceReport",
    "empirically_equivalent",
    "streaming_matches_materializing",
]
