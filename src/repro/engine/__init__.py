"""Execution engine: runs ETL workflows on in-memory data.

Stable public surface
---------------------
The names re-exported here (see ``__all__``) are the engine's supported
API; everything else under ``repro.engine.*`` is internal and may move
between releases.  The core execution surface is:

* :class:`Batch` — the columnar unit of data flow: a dict of equal-length
  column lists plus a lazy row-dict adapter (``.columns``, ``.rows()``,
  ``.num_rows``, ``from_rows`` / ``to_rows``);
* :class:`Executor` (and the :class:`TracingExecutor` /
  :class:`CheckpointingExecutor` variants) — all three ``run()`` methods
  share the ``(workflow, data, *, budget=..., recorder=..., ...)``
  keyword shape;
* :class:`ExecutionBudget` / :class:`ExecutionResult` /
  :class:`ExecutionStats` — the run-configuration and run-outcome types;
* :func:`iter_batches` / :func:`rebatch` — chunking helpers that accept a
  :class:`Batch` or a row sequence and always yield :class:`Batch`;
* :func:`partition_plan` / :func:`execute_partitioned` — data-parallel
  sharded streaming (``Executor.run(..., shards=N)``): range-partitioned
  sources, one streaming pipeline per shard, deterministic merge that is
  byte-identical to the serial run on targets/stats/rejects.

The deprecated row-list helper spellings (``iter_row_batches``,
``rebatch_rows``) remain importable from :mod:`repro.engine.batches` and
warn once per process.
"""

from repro.engine.batches import (
    DEFAULT_BATCH_SIZE,
    ExecutionBudget,
    ResidentLedger,
    SpillableRowBuffer,
    StreamingMetrics,
    iter_batches,
    rebatch,
)
from repro.engine.calibrate import (
    CalibrationWarning,
    apply_selectivities,
    calibrate_workflow,
    measure_selectivities,
)
from repro.engine.checkpoint import (
    CheckpointingExecutor,
    CheckpointStore,
    PartialCheckpoint,
    SimulatedFailure,
)
from repro.engine.columnar import Batch, supports_columnar
from repro.engine.executor import (
    ExecutionResult,
    ExecutionStats,
    Executor,
    iter_components,
)
from repro.engine.partition import (
    LeafPath,
    PartitionPlan,
    execute_partitioned,
    partition_plan,
    shard_bounds,
)
from repro.engine.operators import (
    EngineContext,
    OperatorRegistry,
    default_registry,
    default_scalar_functions,
)
from repro.engine.rows import Row, as_multiset, freeze_row
from repro.engine.tracing import ActivityTrace, TraceReport, TracingExecutor
from repro.engine.validate import (
    RunEquivalenceReport,
    StreamingConformanceReport,
    empirically_equivalent,
    streaming_matches_materializing,
)

__all__ = [
    "Batch",
    "supports_columnar",
    "Executor",
    "ExecutionResult",
    "ExecutionStats",
    "iter_components",
    "DEFAULT_BATCH_SIZE",
    "ExecutionBudget",
    "ResidentLedger",
    "SpillableRowBuffer",
    "StreamingMetrics",
    "iter_batches",
    "rebatch",
    "LeafPath",
    "PartitionPlan",
    "partition_plan",
    "execute_partitioned",
    "shard_bounds",
    "ActivityTrace",
    "TraceReport",
    "TracingExecutor",
    "CheckpointingExecutor",
    "CheckpointStore",
    "PartialCheckpoint",
    "SimulatedFailure",
    "CalibrationWarning",
    "measure_selectivities",
    "apply_selectivities",
    "calibrate_workflow",
    "EngineContext",
    "OperatorRegistry",
    "default_registry",
    "default_scalar_functions",
    "Row",
    "freeze_row",
    "as_multiset",
    "RunEquivalenceReport",
    "StreamingConformanceReport",
    "empirically_equivalent",
    "streaming_matches_materializing",
]
