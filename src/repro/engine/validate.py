"""Empirical workflow equivalence: same input data, same target multisets.

This grounds the paper's equivalence definition ("based on the same input
produce the same output") in actual execution, complementing the symbolic
post-condition check of :mod:`repro.core.equivalence`.  The property-based
test suite drives every transition through this check.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.workflow import ETLWorkflow
from repro.engine.executor import Executor
from repro.engine.rows import Row, as_multiset

__all__ = ["RunEquivalenceReport", "empirically_equivalent"]


@dataclass(frozen=True)
class RunEquivalenceReport:
    """Outcome of running two workflows on the same data."""

    equivalent: bool
    #: target name -> (rows only produced by the first, only by the second)
    differences: dict[str, tuple[Counter, Counter]]

    def __bool__(self) -> bool:
        return self.equivalent


def empirically_equivalent(
    first: ETLWorkflow,
    second: ETLWorkflow,
    source_data: Mapping[str, list[Row]],
    executor: Executor | None = None,
) -> RunEquivalenceReport:
    """Run both workflows on ``source_data`` and compare target multisets."""
    executor = executor if executor is not None else Executor()
    result_first = executor.run(first, source_data)
    result_second = executor.run(second, source_data)

    differences: dict[str, tuple[Counter, Counter]] = {}
    target_names = set(result_first.targets) | set(result_second.targets)
    for name in sorted(target_names):
        bag_first = as_multiset(result_first.targets.get(name, []))
        bag_second = as_multiset(result_second.targets.get(name, []))
        if bag_first != bag_second:
            differences[name] = (bag_first - bag_second, bag_second - bag_first)
    return RunEquivalenceReport(
        equivalent=not differences, differences=differences
    )
