"""Empirical workflow equivalence: same input data, same target multisets.

This grounds the paper's equivalence definition ("based on the same input
produce the same output") in actual execution, complementing the symbolic
post-condition check of :mod:`repro.core.equivalence`.  The property-based
test suite drives every transition through this check.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.workflow import ETLWorkflow
from repro.engine.batches import ExecutionBudget
from repro.engine.executor import Executor
from repro.engine.rows import Row, as_multiset

__all__ = [
    "RunEquivalenceReport",
    "StreamingConformanceReport",
    "empirically_equivalent",
    "streaming_matches_materializing",
]


@dataclass(frozen=True)
class RunEquivalenceReport:
    """Outcome of running two workflows on the same data."""

    equivalent: bool
    #: target name -> (rows only produced by the first, only by the second)
    differences: dict[str, tuple[Counter, Counter]]

    def __bool__(self) -> bool:
        return self.equivalent


def empirically_equivalent(
    first: ETLWorkflow,
    second: ETLWorkflow,
    source_data: Mapping[str, list[Row]],
    executor: Executor | None = None,
) -> RunEquivalenceReport:
    """Run both workflows on ``source_data`` and compare target multisets."""
    executor = executor if executor is not None else Executor()
    result_first = executor.run(first, source_data)
    result_second = executor.run(second, source_data)

    differences: dict[str, tuple[Counter, Counter]] = {}
    target_names = set(result_first.targets) | set(result_second.targets)
    for name in sorted(target_names):
        bag_first = as_multiset(result_first.targets.get(name, []))
        bag_second = as_multiset(result_second.targets.get(name, []))
        if bag_first != bag_second:
            differences[name] = (bag_first - bag_second, bag_second - bag_first)
    return RunEquivalenceReport(
        equivalent=not differences, differences=differences
    )


@dataclass(frozen=True)
class StreamingConformanceReport:
    """One workflow run both ways: does streaming match materializing?

    The streaming engine's contract is *identity*, not just multiset
    equality: same target lists (row order included) and the same
    per-activity ``ExecutionStats`` counters.  ``problems`` lists every
    violated facet in human-readable form.
    """

    conformant: bool
    problems: tuple[str, ...]
    peak_resident_rows: int

    def __bool__(self) -> bool:
        return self.conformant


def streaming_matches_materializing(
    workflow: ETLWorkflow,
    source_data: Mapping[str, list[Row]],
    budget: ExecutionBudget,
    executor: Executor | None = None,
) -> StreamingConformanceReport:
    """Run ``workflow`` on both engine paths and compare exhaustively."""
    executor = executor if executor is not None else Executor()
    base = executor.run(workflow, source_data, collect_rejects=True)
    streamed = executor.run(
        workflow, source_data, collect_rejects=True, budget=budget
    )

    problems: list[str] = []
    if set(base.targets) != set(streamed.targets):
        problems.append(
            f"target names differ: {sorted(base.targets)} vs "
            f"{sorted(streamed.targets)}"
        )
    for name in sorted(set(base.targets) & set(streamed.targets)):
        if base.targets[name] != streamed.targets[name]:
            problems.append(f"target {name!r}: rows differ")
    if base.stats.rows_processed != streamed.stats.rows_processed:
        problems.append("ExecutionStats.rows_processed differ")
    if base.stats.rows_output != streamed.stats.rows_output:
        problems.append("ExecutionStats.rows_output differ")
    if set(base.rejects) != set(streamed.rejects):
        problems.append("reject activity sets differ")
    else:
        for activity_id in sorted(base.rejects):
            if as_multiset(base.rejects[activity_id]) != as_multiset(
                streamed.rejects[activity_id]
            ):
                problems.append(f"rejects for {activity_id!r} differ")
    return StreamingConformanceReport(
        conformant=not problems,
        problems=tuple(problems),
        peak_resident_rows=(
            streamed.streaming.peak_resident_rows if streamed.streaming else 0
        ),
    )
