"""Columnar batches and fused row-wise execution.

The streaming engine used to move ``list[dict]`` chunks: every row-wise
operator rebuilt one Python dict per row per operator, which made dict
churn — not the optimizer's transition choices — the dominant execution
cost.  This module replaces that representation with :class:`Batch`, a
column-dict of plain Python lists with an explicit column order, plus a
small JIT that *fuses* an adjacent chain of builtin row-wise activities
(FILTER / FUNCTION templates) into one compiled function per batch:

* filters refine a selection-index vector with one pass over the single
  column they touch — no row materialization at all;
* transforms (``function_apply``, ``surrogate_key``) compact the live
  columns once, then map only the columns they read or write;
* ``projection`` becomes a column-dict key drop — O(1) instead of one
  dict comprehension per row;
* per-component ``ExecutionStats`` counters fall out of the selection
  vector lengths, so the fused chain stays *bit-identical* to running
  each operator on row dicts.

A :class:`Batch` keeps a **lazy row-dict adapter**: sources wrap their
original row dicts untouched (``to_rows`` hands back the very same
objects), and a columnar batch materializes dicts only when an opaque
operator — a custom template, the join probe, the spill replay — actually
asks for rows.  Blocking and unknown templates therefore still see
``Row`` objects exactly as the materializing path does.

Compilation is lazy and per-schema: a chain is compiled on the first
batch that reaches it, keyed by the incoming column layout, so ragged or
evolving flows simply compile (or fall back) per layout.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.activity import Activity
from repro.engine.rows import Row
from repro.exceptions import ExecutionError

__all__ = [
    "Batch",
    "FusedChainRunner",
    "supports_columnar",
]


class _CannotFuse(Exception):
    """Internal: this chain/layout cannot be compiled — use the row path.

    Raised during codegen (never at batch runtime) when the chain turns
    out to reference an attribute the incoming layout does not carry, or
    uses a parameter shape the kernels do not model.  The caller caches
    the failure and runs the chain through the legacy row-at-a-time
    operators instead, so error behaviour (e.g. the ``KeyError`` a row
    operator raises on a missing attribute) stays exactly the row path's.
    """


#: order tuple -> generated ``values-tuple -> row dict`` function.  A
#: dict display with indexed loads builds a row measurably faster than
#: ``dict(zip(order, values))``, and the handful of layouts a run sees
#: makes the tiny generated functions worth caching process-wide.
_ROW_BUILDER_CACHE: dict[tuple[str, ...], Any] = {}
_ROW_BUILDER_LIMIT = 512


def _row_builder(order: tuple[str, ...]):
    builder = _ROW_BUILDER_CACHE.get(order)
    if builder is None:
        if len(_ROW_BUILDER_CACHE) >= _ROW_BUILDER_LIMIT:
            _ROW_BUILDER_CACHE.clear()
        items = ", ".join(
            f"{attr!r}: _t[{index}]" for index, attr in enumerate(order)
        )
        namespace: dict = {}
        exec(
            compile(
                f"def _row(_t):\n    return {{{items}}}\n",
                "<repro-row-builder>",
                "exec",
            ),
            namespace,
        )
        builder = namespace["_row"]
        _ROW_BUILDER_CACHE[order] = builder
    return builder


class Batch:
    """A fixed chunk of rows stored as columns (or wrapped rows).

    The public contract:

    * ``columns`` — mapping of column name to a list of values, one entry
      per row, in a stable column order;
    * ``num_rows`` / ``len(batch)`` — the row count (never inferred from
      a possibly-empty column dict);
    * ``rows()`` / ``to_rows()`` / iteration — the lazy row-dict adapter;
    * ``from_rows`` / ``from_columns`` — constructors.

    A batch is immutable: engine stages never mutate a batch's column
    lists in place (fan-out buffers replay the same batch to several
    consumers), they build new batches instead.

    Internally a batch is either *column-backed* (``columns`` given) or
    *row-backed* (built from row dicts and converted to columns only on
    first ``columns`` access).  Row-backed batches preserve the original
    dict objects, so opaque operators see exactly what the materializing
    path would feed them.
    """

    __slots__ = ("_columns", "_rows", "_num_rows", "_order")

    def __init__(
        self,
        columns: dict[str, list] | None = None,
        num_rows: int | None = None,
        _rows: list[Row] | None = None,
        _order: tuple[str, ...] | None = None,
    ):
        if columns is None and _rows is None:
            columns = {}
        self._columns = columns
        self._rows = _rows
        self._order = _order
        if num_rows is not None:
            self._num_rows = num_rows
        elif columns is not None:
            self._num_rows = len(next(iter(columns.values()))) if columns else 0
        else:
            self._num_rows = len(_rows)

    # -- constructors ----------------------------------------------------

    @classmethod
    def from_columns(
        cls, columns: dict[str, list], num_rows: int | None = None
    ) -> "Batch":
        """A column-backed batch over ``columns`` (not copied)."""
        return cls(columns=columns, num_rows=num_rows)

    @classmethod
    def from_rows(
        cls, rows: Sequence[Row], order: tuple[str, ...] | None = None
    ) -> "Batch":
        """Wrap ``rows`` as a row-backed batch (columns built lazily).

        ``order`` optionally declares the (already verified) column
        layout — e.g. a source's schema — so later column materialization
        can skip re-deriving it from the first row.
        """
        if isinstance(rows, Batch):
            return rows
        if not isinstance(rows, list):
            rows = list(rows)
        return cls(_rows=rows, _order=order)

    # -- shape -----------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return self._num_rows

    def __len__(self) -> int:
        return self._num_rows

    def __bool__(self) -> bool:
        return self._num_rows > 0

    @property
    def schema(self) -> tuple[str, ...]:
        """Column names in column order."""
        if self._columns is not None:
            return tuple(self._columns)
        if self._order is not None:
            return self._order
        return tuple(self._rows[0]) if self._rows else ()

    # -- columnar view ---------------------------------------------------

    @property
    def columns(self) -> dict[str, list]:
        """The column dict; materialized from rows on first access."""
        if self._columns is None:
            self._columns = self._columns_from_rows()
        return self._columns

    @property
    def is_columnar(self) -> bool:
        """True when a column view already exists (cheap to use)."""
        return self._columns is not None

    def columns_or_none(self) -> dict[str, list] | None:
        """Like :attr:`columns`, but ``None`` for ragged row sets
        instead of raising — callers fall back to the row adapter."""
        if self._columns is not None:
            return self._columns
        try:
            return self.columns
        except ExecutionError:
            return None

    def _columns_from_rows(self) -> dict[str, list]:
        rows = self._rows
        if not rows:
            return {attr: [] for attr in (self._order or ())}
        order = self._order if self._order is not None else tuple(rows[0])
        width = len(order)
        try:
            columns = {attr: [row[attr] for row in rows] for attr in order}
        except KeyError as exc:
            raise ExecutionError(
                f"cannot build columns: row is missing attribute {exc.args[0]!r}"
            ) from None
        for row in rows:
            if len(row) != width:
                raise ExecutionError(
                    "cannot build columns: rows carry differing attribute sets"
                )
        return columns

    # -- row adapter -----------------------------------------------------

    def rows(self) -> Iterator[Row]:
        """The rows as dicts, lazily (original objects when row-backed)."""
        if self._rows is not None:
            return iter(self._rows)
        order = tuple(self._columns)
        if not order:
            return ({} for _ in range(self._num_rows))
        cols = [self._columns[attr] for attr in order]
        return map(_row_builder(order), zip(*cols))

    def to_rows(self) -> list[Row]:
        """The rows as a fresh list of dicts (see :meth:`rows`)."""
        if self._rows is not None:
            return list(self._rows)
        return list(self.rows())

    def __iter__(self) -> Iterator[Row]:
        return self.rows()

    def row_at(self, index: int) -> Row:
        """One row as a dict."""
        if self._rows is not None:
            return self._rows[index]
        return {attr: col[index] for attr, col in self._columns.items()}

    # -- columnar transforms --------------------------------------------

    def select(self, indices: Sequence[int]) -> "Batch":
        """A new batch holding the rows at ``indices`` (in that order)."""
        if self._columns is None:
            rows = self._rows
            return Batch.from_rows([rows[i] for i in indices], self._order)
        return Batch(
            columns={
                attr: [col[i] for i in indices]
                for attr, col in self._columns.items()
            },
            num_rows=len(indices),
        )

    def slice(self, start: int, stop: int) -> "Batch":
        """The rows in ``[start, stop)`` as a new batch."""
        stop = min(stop, self._num_rows)
        if self._columns is None:
            return Batch.from_rows(self._rows[start:stop], self._order)
        return Batch(
            columns={
                attr: col[start:stop] for attr, col in self._columns.items()
            },
            num_rows=max(0, stop - start),
        )

    @staticmethod
    def concat(pieces: "Sequence[Batch]") -> "Batch":
        """All pieces glued in order (columnar when layouts agree)."""
        pieces = [piece for piece in pieces if piece.num_rows]
        if not pieces:
            return Batch(columns={}, num_rows=0)
        if len(pieces) == 1:
            return pieces[0]
        first = pieces[0].columns_or_none()
        if first is not None and all(
            (cols := piece.columns_or_none()) is not None
            and set(cols) == set(first)
            for piece in pieces[1:]
        ):
            merged: dict[str, list] = {attr: list(col) for attr, col in first.items()}
            for piece in pieces[1:]:
                for attr, col in merged.items():
                    col.extend(piece.columns[attr])
            return Batch(
                columns=merged,
                num_rows=sum(piece.num_rows for piece in pieces),
            )
        rows: list[Row] = []
        for piece in pieces:
            rows.extend(piece.rows())
        return Batch.from_rows(rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "columnar" if self._columns is not None else "row-backed"
        return f"Batch({kind}, {self._num_rows} rows, schema={self.schema})"


def frozen_rows(columns: Mapping[str, list], num_rows: int) -> Iterator[tuple]:
    """Per-row ``freeze_row`` values computed column-wise.

    Yields, for each row, the tuple of ``(attr, value)`` pairs sorted by
    attribute name — exactly what :func:`repro.engine.rows.freeze_row`
    produces — without building the row dict first.  Hashability is *not*
    checked here; callers that need the row path's ``ExecutionError`` on
    unhashable values hash each tuple themselves.
    """
    attrs = sorted(columns)
    if not attrs:
        return (() for _ in range(num_rows))
    paired = [[(attr, value) for value in columns[attr]] for attr in attrs]
    return zip(*paired)


# ---------------------------------------------------------------------------
# Fused-chain compilation
# ---------------------------------------------------------------------------

#: Selection comparators that may be inlined into generated source.  The
#: spellings come from the builtin template contract; anything else makes
#: the chain fall back to the row-at-a-time operator.
_INLINE_OPS = frozenset({"<", "<=", ">", ">=", "==", "!="})

#: Builtin row-wise templates the fuser knows how to compile.
_FUSABLE = frozenset(
    {
        "selection",
        "not_null",
        "range_check",
        "pk_check",
        "projection",
        "function_apply",
        "surrogate_key",
    }
)

_FILTER_TEMPLATES = frozenset({"selection", "not_null", "range_check", "pk_check"})


def supports_columnar(component: Activity, registry) -> bool:
    """True when ``component`` can run through the fused columnar path.

    Requires a builtin row-wise template *still bound to its builtin
    operator* — re-registering a custom operator under a builtin name
    (``replace=True``) opts that template out of fusion, because the
    fused kernels compile the builtin semantics, not the replacement.
    """
    name = component.template.name
    if name not in _FUSABLE:
        return False
    if not registry.is_builtin(name):
        return False
    if name == "selection" and component.params.get("op") not in _INLINE_OPS:
        return False
    return True


class _Codegen:
    """Accumulates generated source plus its closure environment.

    The generated function has the shape::

        def _fused(_cols, _n0):
            _col1 = _cols['A']; ...
            <stage statements>
            return {'A': _col1, ...}, _nK, (<stat counts>,), (<rejects>,)

    Filters refine ``_sel`` (a list of surviving row indices); density —
    whether ``_sel`` covers every current row — is tracked *statically*
    at codegen time, so compaction gathers happen exactly where a
    transform or the chain end needs dense columns, guarded at runtime by
    a length check so selectivity-1.0 stretches skip the gather entirely.
    """

    def __init__(self, schema: tuple[str, ...]):
        self.prologue: list[str] = []
        self.lines: list[str] = []
        self.env: dict[str, Any] = {}
        self._serial = 0
        # column name -> current identifier, in row-dict key order
        self.cols: dict[str, str] = {}
        for attr in schema:
            ident = self.fresh("col")
            self.cols[attr] = ident
            self.prologue.append(f"    {ident} = _cols[{attr!r}]")
        self.dense = True
        self.count_var = "_n0"
        # The physical length of the column lists — equals count_var
        # whenever dense; filters shrink count_var but not the lists.
        self.physical_var = "_n0"
        # Attributes proven non-null for every surviving row: a passed
        # null-rejecting filter (selection / not_null / range_check)
        # establishes the fact, and since filters only shrink ``_sel``
        # it stays true until the column is replaced.  Later filters on
        # the same column then skip their ``is not None`` guard.
        self.not_null: set[str] = set()

    def fresh(self, stem: str) -> str:
        self._serial += 1
        return f"_{stem}{self._serial}"

    def bind(self, value: Any) -> str:
        ident = self.fresh("k")
        self.env[ident] = value
        return ident

    def pin(self, value: Any) -> None:
        """Hold ``value`` in the kernel environment without using it.

        ``_PROGRAM_CACHE`` keys on the ``id()`` of resolved context
        objects, which is only sound while those objects stay alive.
        Stages whose emitted code binds a *derived* object (an unwrapped
        reference set, an inlined scalar) must pin the original here, or
        its id could be recycled by a different object once the owning
        context dies — and a later chain would wrongly hit this entry.
        """
        self.env[self.fresh("pin")] = value

    def emit(self, line: str) -> None:
        self.lines.append("    " + line)

    def col(self, attr: str) -> str:
        try:
            return self.cols[attr]
        except KeyError:
            raise _CannotFuse(attr) from None

    # -- density management ---------------------------------------------

    def ensure_dense(self) -> None:
        """Compact every live column through ``_sel`` (when needed)."""
        if self.dense:
            return
        if self.cols:
            # Skip the gather when no filter actually dropped a row —
            # _sel is then the identity permutation by construction.
            self.emit(f"if {self.count_var} != {self.physical_var}:")
            for ident in self.cols.values():
                self.emit(f"    {ident} = [{ident}[_i] for _i in _sel]")
        self.dense = True
        self.physical_var = self.count_var

    def filter_stage(self, expr: str) -> tuple[str, str]:
        """Emit one filter stage; returns (rows_in, rows_out) count exprs."""
        rows_in = self.count_var
        if self.dense:
            self.emit(f"_sel = [_i for _i in range({self.count_var}) if {expr}]")
            self.dense = False
        else:
            self.emit(f"_sel = [_i for _i in _sel if {expr}]")
        out_var = self.fresh("n")
        self.emit(f"{out_var} = len(_sel)")
        self.count_var = out_var
        return rows_in, out_var


#: Builtin scalar functions whose bodies are pure single-argument
#: expressions, keyed by code object (nested defs share one code object
#: across :func:`default_scalar_functions` calls, and none of these
#: close over anything, so code identity pins exact semantics).  The
#: expression is inlined into the fused loop over ``_v``.
def _scalar_inline_table() -> dict[Any, str]:
    from repro.engine.operators import default_scalar_functions

    templates = {
        "dollar_to_euro": "(round(_v * 0.88, 6) if _v is not None else None)",
        "scale_double": "(_v * 2 if _v is not None else None)",
        "shift_up": "(_v + 1000 if _v is not None else None)",
        "negate": "(-_v if _v is not None else None)",
    }
    return {
        fn.__code__: templates[name]
        for name, fn in default_scalar_functions().items()
        if name in templates
    }


_SCALAR_INLINE = _scalar_inline_table()


def _emit_stage(
    gen: _Codegen, component: Activity, context
) -> tuple[str, str]:
    """Emit one component's kernel; returns (rows_in, rows_out) exprs.

    Each kernel mirrors the corresponding builtin operator in
    :mod:`repro.engine.operators` statement for statement — including the
    dict-key-order effects of ``function_apply`` / ``surrogate_key``
    (columns are dropped and (re)inserted on the codegen column map with
    the same ordering rules ``dict`` applies to rows) and the in-order
    per-row error behaviour of scalar functions and lookups.
    """
    name = component.template.name
    params = component.params
    if name == "selection":
        op = params["op"]
        if op not in _INLINE_OPS:
            raise _CannotFuse(f"selection op {op!r}")
        attr = params["attr"]
        column = gen.col(attr)
        value = gen.bind(params["value"])
        if attr in gen.not_null:
            expr = f"{column}[_i] {op} {value}"
        else:
            expr = f"(_v := {column}[_i]) is not None and _v {op} {value}"
        counts = gen.filter_stage(expr)
        gen.not_null.add(attr)
        return counts
    if name == "not_null":
        attr = params["attr"]
        column = gen.col(attr)
        if attr in gen.not_null:
            # Already proven: the stage passes every surviving row.
            return gen.count_var, gen.count_var
        counts = gen.filter_stage(f"{column}[_i] is not None")
        gen.not_null.add(attr)
        return counts
    if name == "range_check":
        attr = params["attr"]
        column = gen.col(attr)
        low = gen.bind(params["low"])
        high = gen.bind(params["high"])
        if attr in gen.not_null:
            expr = f"{low} <= {column}[_i] <= {high}"
        else:
            expr = (
                f"(_v := {column}[_i]) is not None and {low} <= _v <= {high}"
            )
        counts = gen.filter_stage(expr)
        gen.not_null.add(attr)
        return counts
    if name == "pk_check":
        keys = tuple(params["key_attrs"])
        existing = context.reference(params["reference"])
        idents = [gen.col(key) for key in keys]
        if len(idents) == 1 and all(
            type(entry) is tuple and len(entry) == 1 for entry in existing
        ):
            # Unwrap a pure single-attribute reference once at compile
            # so the per-row key needs no tuple allocation.  The cache
            # key carries ``id(existing)``, so the original set must
            # stay alive as long as this kernel does.
            gen.pin(existing)
            ref = gen.bind(frozenset(entry[0] for entry in existing))
            return gen.filter_stage(f"{idents[0]}[_i] not in {ref}")
        ref = gen.bind(existing)
        if len(idents) == 1:
            key_expr = f"({idents[0]}[_i],)"
        else:
            key_expr = "(" + ", ".join(f"{c}[_i]" for c in idents) + ")"
        return gen.filter_stage(f"{key_expr} not in {ref}")
    if name == "projection":
        # Dropping attributes never touches values: a column-dict key
        # removal replaces one dict comprehension per row.
        for attr in set(params["attrs"]):
            gen.cols.pop(attr, None)
            gen.not_null.discard(attr)
        return gen.count_var, gen.count_var
    if name == "function_apply":
        function = context.scalar(params["function"])
        in_attrs = tuple(params["inputs"])
        out_attr = params["output"]
        in_place = out_attr in in_attrs
        drop_inputs = params.get("drop_inputs", True) and not in_place
        sources = [gen.col(attr) for attr in in_attrs]
        gen.ensure_dense()
        out = gen.fresh("col")
        inline = (
            _SCALAR_INLINE.get(getattr(function, "__code__", None))
            if len(sources) == 1
            else None
        )
        if inline is not None:
            # A known builtin scalar: its body is a pure expression over
            # one argument, so the call disappears into the loop.  The
            # cache key carries ``id(function)`` — pin it so the id
            # cannot be recycled while this kernel is cached.
            gen.pin(function)
            gen.emit(f"{out} = [{inline} for _v in {sources[0]}]")
        elif sources:
            fn = gen.bind(function)
            gen.emit(f"{out} = list(map({fn}, {', '.join(sources)}))")
        else:
            fn = gen.bind(function)
            gen.emit(f"{out} = [{fn}() for _i in range({gen.count_var})]")
        if drop_inputs:
            for attr in in_attrs:
                gen.col(attr)  # duplicate inputs fall back to the row path
                del gen.cols[attr]
        # dict-assignment semantics: replace in place when the attribute
        # exists, append at the end otherwise — exactly what
        # ``new_row[out_attr] = value`` does on a row dict.
        gen.cols[out_attr] = out
        gen.not_null.discard(out_attr)
        return gen.count_var, gen.count_var
    if name == "surrogate_key":
        lookup = context.lookup(params["lookup"])
        key_column = gen.col(params["key_attr"])
        gen.ensure_dense()
        out = gen.fresh("col")
        raw = context.lookups[params["lookup"]]
        if not callable(raw):
            # Mapping table: index it directly (C speed) and rebuild the
            # row operator's error on a miss — same message, same key.
            get = gen.bind(raw.__getitem__)
            err = gen.bind(ExecutionError)
            prefix = gen.bind(
                f"lookup {params['lookup']!r} has no surrogate for key "
            )
            gen.emit("try:")
            gen.emit(f"    {out} = list(map({get}, {key_column}))")
            gen.emit("except KeyError as _e:")
            gen.emit(
                f"    raise {err}({prefix} + repr(_e.args[0])) from None"
            )
        else:
            fn = gen.bind(lookup)
            gen.emit(f"{out} = list(map({fn}, {key_column}))")
        # pop-then-set order: the production key leaves its slot first,
        # so skey_attr == key_attr appends at the end like the row path.
        del gen.cols[params["key_attr"]]
        gen.cols[params["skey_attr"]] = out
        gen.not_null.discard(params["skey_attr"])
        gen.not_null.discard(params["key_attr"])
        return gen.count_var, gen.count_var
    raise _CannotFuse(name)


def _tuple_literal(items: Sequence[str]) -> str:
    items = list(items)
    if not items:
        return "()"
    if len(items) == 1:
        return f"({items[0]},)"
    return "(" + ", ".join(items) + ")"


@dataclass(frozen=True)
class _RejectBound:
    """A contiguous run of filter stages whose drops one activity owns."""

    start: int  # first stage index, inclusive
    end: int  # last stage index, exclusive
    activity_id: str


#: Process-wide source → code-object cache.  Codegen is deterministic, so
#: the same chain shape over the same layout always produces the same
#: source; bound constants live in the per-chain exec namespace, never in
#: the code object, which makes sharing across runs/contexts safe.
_CODE_CACHE: dict[str, Any] = {}
_CODE_CACHE_LIMIT = 512


def _compile_chain(
    stages: Sequence[Activity],
    bounds: Sequence[_RejectBound],
    schema: tuple[str, ...],
    context,
) -> Callable:
    """Compile a fused function for ``stages`` over ``schema``.

    Returns ``_fused(cols, num_rows) -> (out_cols, out_rows, counts,
    rejects)`` where ``counts`` flattens per-stage ``(rows_in,
    rows_out)`` pairs and ``rejects`` holds one dropped-row list per
    reject bound.  Raises :class:`_CannotFuse` when the layout cannot be
    compiled; context-resolution failures (unknown scalar / lookup /
    reference) raise :class:`~repro.exceptions.ExecutionError` exactly as
    the row operators would on their first batch.
    """
    gen = _Codegen(schema)
    counts: list[tuple[str, str]] = []
    bound_starts = {bound.start: j for j, bound in enumerate(bounds)}
    bound_ends = {bound.end: j for j, bound in enumerate(bounds)}
    reject_idents: list[str] = ["" for _ in bounds]
    prev_exprs: list[str] = ["" for _ in bounds]
    for index, component in enumerate(stages):
        j = bound_starts.get(index)
        if j is not None:
            if component.template.name not in _FILTER_TEMPLATES:
                raise _CannotFuse("reject bound holds a non-filter stage")
            reject = gen.fresh("rej")
            gen.emit(f"{reject} = []")
            reject_idents[j] = reject
            if gen.dense:
                prev_exprs[j] = f"range({gen.count_var})"
            else:
                prev = gen.fresh("prev")
                gen.emit(f"{prev} = _sel")
                prev_exprs[j] = prev
        counts.append(_emit_stage(gen, component, context))
        j = bound_ends.get(index + 1)
        if j is not None:
            # Filters keep rows unmodified and _sel ascending, so the
            # dropped rows come out in input order — the same order the
            # row path's per-batch bag difference reports them in.
            kept = gen.fresh("kept")
            gen.emit(f"{kept} = set(_sel)")
            row_literal = (
                "{"
                + ", ".join(
                    f"{attr!r}: {ident}[_i]"
                    for attr, ident in gen.cols.items()
                )
                + "}"
            )
            gen.emit(
                f"{reject_idents[j]}.extend({row_literal} "
                f"for _i in {prev_exprs[j]} if _i not in {kept})"
            )
    gen.ensure_dense()
    cols_literal = (
        "{"
        + ", ".join(f"{attr!r}: {ident}" for attr, ident in gen.cols.items())
        + "}"
    )
    flat_counts = [expr for pair in counts for expr in pair]
    body = list(gen.prologue) + list(gen.lines)
    body.append(
        f"    return {cols_literal}, {gen.count_var}, "
        f"{_tuple_literal(flat_counts)}, {_tuple_literal(reject_idents)}"
    )
    source = "def _fused(_cols, _n0):\n" + "\n".join(body) + "\n"
    code = _CODE_CACHE.get(source)
    if code is None:
        if len(_CODE_CACHE) >= _CODE_CACHE_LIMIT:
            _CODE_CACHE.clear()
        code = compile(source, "<repro-fused-chain>", "exec")
        _CODE_CACHE[source] = code
    namespace = dict(gen.env)
    exec(code, namespace)
    return namespace["_fused"]


_UNCOMPILED = object()

#: Cross-run program cache.  Keyed by the chain's *structure* (template
#: names + params), the column layout, the reject bounds, and the
#: identities of the context objects the kernel binds (scalar functions,
#: lookup tables, reference sets).  The cached function's environment
#: holds strong references to exactly those objects, so the ids in the
#: key cannot be recycled while the entry lives; replacing a context
#: entry with a new object simply misses and recompiles.
_PROGRAM_CACHE: dict[tuple, Any] = {}
_PROGRAM_CACHE_LIMIT = 512


def _chain_cache_key(
    stages: Sequence[Activity],
    bounds: Sequence[_RejectBound],
    layout: tuple[str, ...],
    context,
) -> tuple:
    """Structural identity of a compiled chain (see ``_PROGRAM_CACHE``).

    Resolves the same context names the compiler would, so unknown
    scalar/lookup/reference names raise :class:`ExecutionError` here —
    on the first batch, exactly like the row operators.
    """
    parts = []
    for component in stages:
        name = component.template.name
        params = component.params
        if name == "function_apply":
            resolved = id(context.scalar(params["function"]))
        elif name == "surrogate_key":
            context.lookup(params["lookup"])
            resolved = id(context.lookups[params["lookup"]])
        elif name == "pk_check":
            resolved = id(context.reference(params["reference"]))
        else:
            resolved = 0
        parts.append((name, repr(sorted(params.items())), resolved))
    return (layout, tuple(bounds), tuple(parts))


class FusedChainRunner:
    """Runs a chain of builtin row-wise components one batch at a time.

    The runner compiles a fused function lazily per incoming column
    layout (so ragged or evolving flows just compile — or fall back —
    per layout) and otherwise replays the chain through the legacy row
    operators, which keeps error semantics and custom corner cases
    bit-identical to the row path.

    ``add`` may be called repeatedly *before* the first batch to grow
    the chain — the streaming pipeline uses this to fuse row-wise stages
    across node boundaries.
    """

    def __init__(self, context, registry):
        self.context = context
        self.registry = registry
        self.stages: list[Activity] = []
        self.bounds: list[_RejectBound] = []
        self._programs: dict[tuple[str, ...], Any] = {}

    def add(
        self,
        components: Sequence[Activity],
        reject_activity_id: str | None = None,
    ) -> None:
        """Append components; with an id, track their drops as rejects."""
        start = len(self.stages)
        self.stages.extend(components)
        if reject_activity_id is not None:
            self.bounds.append(
                _RejectBound(start, len(self.stages), reject_activity_id)
            )
        self._programs.clear()

    def stage_in_reject_bound(self, index: int) -> bool:
        return any(
            bound.start <= index < bound.end for bound in self.bounds
        )

    def run_batch(
        self, batch: Batch
    ) -> tuple[Batch, list[tuple[int, int]], dict[str, list[Row]]]:
        """One batch through the whole chain.

        Returns ``(out_batch, stage_counts, rejects_by_activity)`` where
        ``stage_counts[i]`` is the ``(rows_in, rows_out)`` pair of stage
        ``i`` — the caller owns stats/metric recording policy.
        """
        columns = batch.columns_or_none()
        if columns is not None:
            key = tuple(columns)
            fn = self._programs.get(key, _UNCOMPILED)
            if fn is _UNCOMPILED:
                gkey = _chain_cache_key(
                    self.stages, self.bounds, key, self.context
                )
                fn = _PROGRAM_CACHE.get(gkey, _UNCOMPILED)
                if fn is _UNCOMPILED:
                    try:
                        fn = _compile_chain(
                            self.stages, self.bounds, key, self.context
                        )
                    except _CannotFuse:
                        # None entries pin nothing, so their keyed ids
                        # may be recycled — a spurious hit here only
                        # forces the (always correct) row fallback.
                        fn = None
                    if len(_PROGRAM_CACHE) >= _PROGRAM_CACHE_LIMIT:
                        _PROGRAM_CACHE.clear()
                    _PROGRAM_CACHE[gkey] = fn
                self._programs[key] = fn
            if fn is not None:
                out_cols, out_rows, flat, rejects = fn(
                    columns, batch.num_rows
                )
                stage_counts = list(zip(flat[0::2], flat[1::2]))
                dropped = {
                    bound.activity_id: rejects[j]
                    for j, bound in enumerate(self.bounds)
                }
                return (
                    Batch.from_columns(out_cols, out_rows),
                    stage_counts,
                    dropped,
                )
        return self._run_rows(batch)

    def _run_rows(
        self, batch: Batch
    ) -> tuple[Batch, list[tuple[int, int]], dict[str, list[Row]]]:
        """Legacy row-at-a-time fallback (ragged layout / unfusable)."""
        from collections import Counter

        from repro.engine.rows import freeze_row

        rows = batch.to_rows()
        stage_counts: list[tuple[int, int]] = []
        dropped = {bound.activity_id: [] for bound in self.bounds}
        starts = {bound.start: bound for bound in self.bounds}
        ends = {bound.end: bound for bound in self.bounds}
        entering: dict[str, list[Row]] = {}
        out = rows
        for index, component in enumerate(self.stages):
            bound = starts.get(index)
            if bound is not None:
                entering[bound.activity_id] = out
            operator = self.registry.get(component.template.name)
            produced = operator(component, (out,), self.context)
            stage_counts.append((len(out), len(produced)))
            out = produced
            bound = ends.get(index + 1)
            if bound is not None:
                kept = Counter(freeze_row(row) for row in out)
                rejects = dropped[bound.activity_id]
                for row in entering[bound.activity_id]:
                    frozen = freeze_row(row)
                    if kept[frozen] > 0:
                        kept[frozen] -= 1
                    else:
                        rejects.append(row)
        return Batch.from_rows(out), stage_counts, dropped
