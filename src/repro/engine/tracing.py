"""Execution tracing: per-activity wall-clock and row metrics.

Wraps an :class:`~repro.engine.executor.Executor` run with fine-grained
measurements — rows in/out, per-activity duration, empirical selectivity
— and renders an operator-level profile.  Useful for validating the cost
model against real behaviour (which activity actually dominates?) and for
the kind of night-window capacity planning the paper's introduction
motivates.
"""

from __future__ import annotations

import time
from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.activity import Activity, CompositeActivity
from repro.core.workflow import ETLWorkflow
from repro.engine.executor import ExecutionResult, ExecutionStats, Executor
from repro.engine.rows import Row

__all__ = ["ActivityTrace", "TraceReport", "TracingExecutor"]


@dataclass(frozen=True)
class ActivityTrace:
    """Measurements for one activity in one run."""

    activity_id: str
    name: str
    template: str
    rows_in: int
    rows_out: int
    seconds: float

    @property
    def selectivity(self) -> float | None:
        if self.rows_in == 0:
            return None
        return self.rows_out / self.rows_in


@dataclass
class TraceReport:
    """All activity traces of one run, render-able as a profile."""

    traces: list[ActivityTrace]
    total_seconds: float

    def by_cost(self) -> list[ActivityTrace]:
        return sorted(self.traces, key=lambda t: t.seconds, reverse=True)

    def render(self, top: int | None = None) -> str:
        lines = [
            f"{'activity':<10}{'template':<16}{'rows in':>9}{'rows out':>9}"
            f"{'sel':>7}{'ms':>9}{'%time':>7}"
        ]
        rows = self.by_cost()
        if top is not None:
            rows = rows[:top]
        for trace in rows:
            selectivity = (
                f"{trace.selectivity:.2f}" if trace.selectivity is not None else "—"
            )
            share = (
                100.0 * trace.seconds / self.total_seconds
                if self.total_seconds > 0
                else 0.0
            )
            lines.append(
                f"{trace.activity_id:<10}{trace.template:<16}"
                f"{trace.rows_in:>9}{trace.rows_out:>9}{selectivity:>7}"
                f"{1000 * trace.seconds:>9.2f}{share:>7.1f}"
            )
        return "\n".join(lines)


class TracingExecutor(Executor):
    """An executor that records a per-activity profile.

    After :meth:`run`, the profile of the last run is available as
    :attr:`last_trace`.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.last_trace: TraceReport | None = None
        self._current: list[ActivityTrace] | None = None

    def run(
        self,
        workflow: ETLWorkflow,
        source_data: Mapping[str, list[Row]],
        check_schemas: bool = True,
    ) -> ExecutionResult:
        self._current = []
        started = time.perf_counter()
        try:
            result = super().run(workflow, source_data, check_schemas)
        finally:
            elapsed = time.perf_counter() - started
            self.last_trace = TraceReport(
                traces=self._current or [], total_seconds=elapsed
            )
            self._current = None
        return result

    def _run_activity(
        self,
        activity: Activity,
        inputs: tuple[list[Row], ...],
        stats: ExecutionStats,
    ) -> list[Row]:
        if isinstance(activity, CompositeActivity):
            # Components are traced individually by the recursive calls.
            return super()._run_activity(activity, inputs, stats)
        started = time.perf_counter()
        produced = super()._run_activity(activity, inputs, stats)
        elapsed = time.perf_counter() - started
        if self._current is not None:
            self._current.append(
                ActivityTrace(
                    activity_id=activity.id,
                    name=activity.name,
                    template=activity.template.name,
                    rows_in=sum(len(flow) for flow in inputs),
                    rows_out=len(produced),
                    seconds=elapsed,
                )
            )
        return produced
