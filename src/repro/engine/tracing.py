"""Execution tracing: per-activity wall-clock and row metrics.

Wraps an :class:`~repro.engine.executor.Executor` run with fine-grained
measurements — rows in/out, per-activity duration, empirical selectivity
— and renders an operator-level profile.  Useful for validating the cost
model against real behaviour (which activity actually dominates?) and for
the kind of night-window capacity planning the paper's introduction
motivates.

Tracing composes with both execution paths.  On the materializing path
each component is timed around its operator call; on the streaming path
(run with an :class:`~repro.engine.batches.ExecutionBudget`) the trace
additionally reports how many batches each component processed and its
peak resident rows, taken from the run's
:class:`~repro.engine.batches.ResidentLedger`.
"""

from __future__ import annotations

import time
from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.activity import Activity
from repro.core.workflow import ETLWorkflow
from repro.engine.batches import ExecutionBudget, ResidentLedger
from repro.engine.executor import ExecutionResult, ExecutionStats, Executor
from repro.engine.rows import Row
from repro.obs import get_recorder

__all__ = ["ActivityTrace", "TraceReport", "TracingExecutor"]


@dataclass(frozen=True)
class ActivityTrace:
    """Measurements for one activity in one run.

    ``batches`` is 1 on the materializing path (the whole flow is one
    chunk); ``peak_resident_rows`` is only known for streaming runs.
    """

    activity_id: str
    name: str
    template: str
    rows_in: int
    rows_out: int
    seconds: float
    batches: int = 1
    peak_resident_rows: int | None = None

    @property
    def selectivity(self) -> float | None:
        if self.rows_in == 0:
            return None
        return self.rows_out / self.rows_in


@dataclass
class TraceReport:
    """All activity traces of one run, render-able as a profile."""

    traces: list[ActivityTrace]
    total_seconds: float

    def by_cost(self) -> list[ActivityTrace]:
        return sorted(self.traces, key=lambda t: t.seconds, reverse=True)

    def render(self, top: int | None = None) -> str:
        lines = [
            f"{'activity':<10}{'template':<16}{'rows in':>9}{'rows out':>9}"
            f"{'sel':>7}{'batches':>9}{'res.peak':>9}{'ms':>9}{'%time':>7}"
        ]
        rows = self.by_cost()
        if top is not None:
            rows = rows[:top]
        for trace in rows:
            selectivity = (
                f"{trace.selectivity:.2f}" if trace.selectivity is not None else "—"
            )
            peak = (
                str(trace.peak_resident_rows)
                if trace.peak_resident_rows is not None
                else "—"
            )
            share = (
                100.0 * trace.seconds / self.total_seconds
                if self.total_seconds > 0
                else 0.0
            )
            lines.append(
                f"{trace.activity_id:<10}{trace.template:<16}"
                f"{trace.rows_in:>9}{trace.rows_out:>9}{selectivity:>7}"
                f"{trace.batches:>9}{peak:>9}"
                f"{1000 * trace.seconds:>9.2f}{share:>7.1f}"
            )
        return "\n".join(lines)


class TracingExecutor(Executor):
    """An executor that records a per-activity profile.

    After :meth:`run`, the profile of the last run is available as
    :attr:`last_trace`.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.last_trace: TraceReport | None = None
        self._current: list[ActivityTrace] | None = None

    def _run(
        self,
        workflow: ETLWorkflow,
        source_data: Mapping[str, list[Row]],
        check_schemas: bool,
        collect_rejects: bool,
        budget: ExecutionBudget | None,
        shards: int | None = None,
    ) -> ExecutionResult:
        # Overrides the body hook, not run() itself: the base run()
        # resolves the shared keyword shape (and installs a recorder=)
        # before this executes, so tracing inherits the facade for free.
        self._current = []
        started = time.perf_counter()
        sharded = shards is not None and shards > 1
        try:
            with get_recorder().span(
                "engine.run",
                mode=(
                    "sharded"
                    if sharded
                    else "streaming" if budget is not None else "batch"
                ),
            ):
                result = super()._run(
                    workflow,
                    source_data,
                    check_schemas,
                    collect_rejects,
                    budget,
                    shards,
                )
        finally:
            elapsed = time.perf_counter() - started
            self.last_trace = TraceReport(
                traces=self._current or [], total_seconds=elapsed
            )
            self._current = None
        return result

    def _run_component(
        self,
        component: Activity,
        inputs: tuple[list[Row], ...],
        stats: ExecutionStats,
    ) -> list[Row]:
        started = time.perf_counter()
        produced = super()._run_component(component, inputs, stats)
        elapsed = time.perf_counter() - started
        get_recorder().record_span(
            "engine.operator",
            elapsed,
            activity=component.id,
            operator=component.template.name,
            rows_in=sum(len(flow) for flow in inputs),
            rows_out=len(produced),
        )
        if self._current is not None:
            self._current.append(
                ActivityTrace(
                    activity_id=component.id,
                    name=component.name,
                    template=component.template.name,
                    rows_in=sum(len(flow) for flow in inputs),
                    rows_out=len(produced),
                    seconds=elapsed,
                )
            )
        return produced

    def _streaming_finished(
        self, metrics, ledger: ResidentLedger, total_seconds: float
    ) -> None:
        """Turn a streaming run's per-component metrics into traces."""
        if self._current is None:
            return
        recorder = get_recorder()
        for component_id, entry in metrics.items():
            recorder.record_span(
                "engine.operator",
                entry.seconds,
                activity=component_id,
                operator=entry.activity.template.name,
                rows_in=entry.rows_in,
                rows_out=entry.rows_out,
                batches=entry.batches,
            )
            recorder.gauge(
                "engine.resident_rows", activity=component_id
            ).set(ledger.peak_for(component_id))
            self._current.append(
                ActivityTrace(
                    activity_id=component_id,
                    name=entry.activity.name,
                    template=entry.activity.template.name,
                    rows_in=entry.rows_in,
                    rows_out=entry.rows_out,
                    seconds=entry.seconds,
                    batches=entry.batches,
                    peak_resident_rows=ledger.peak_for(component_id),
                )
            )
        recorder.gauge("engine.resident_rows.peak").set(ledger.peak)
        if ledger.spilled_rows:
            recorder.counter("engine.spilled_rows").add(ledger.spilled_rows)
