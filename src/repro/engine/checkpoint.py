"""Resumable execution: checkpoints and recovery from mid-run failures.

ETL workflows run in tight night-time windows; when a load dies at 3 a.m.
the operator wants to resume, not restart (the paper cites Labio et al.,
"Efficient Resumption of Interrupted Warehouse Loads" [12], as related
work).  :class:`CheckpointingExecutor` persists each node's output flow
into a :class:`CheckpointStore` as it completes; a re-run against the
same store skips every checkpointed node and recomputes only the rest.

Failures are injected by node id (``fail_before``), which makes the
recovery property mechanically testable: for *any* failure point, failing
+ resuming must produce exactly the full run's targets while recomputing
only the nodes that had not completed.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.core.recordset import RecordSet
from repro.core.workflow import ETLWorkflow
from repro.engine.executor import ExecutionResult, ExecutionStats, Executor
from repro.engine.rows import Row, check_rows_match_schema
from repro.exceptions import ExecutionError

__all__ = ["SimulatedFailure", "CheckpointStore", "CheckpointingExecutor"]


class SimulatedFailure(ExecutionError):
    """Raised when execution reaches an injected failure point."""

    def __init__(self, node_id: str):
        super().__init__(f"simulated failure before node {node_id}")
        self.node_id = node_id


@dataclass
class CheckpointStore:
    """Per-node output flows of (partially) completed runs."""

    flows: dict[str, list[Row]] = field(default_factory=dict)

    def __contains__(self, node_id: object) -> bool:
        return node_id in self.flows

    def save(self, node_id: str, rows: list[Row]) -> None:
        self.flows[node_id] = list(rows)

    def restore(self, node_id: str) -> list[Row]:
        return list(self.flows[node_id])

    def clear(self) -> None:
        self.flows.clear()

    @property
    def completed_nodes(self) -> frozenset[str]:
        return frozenset(self.flows)


class CheckpointingExecutor(Executor):
    """An :class:`Executor` that checkpoints node outputs and resumes.

    ``run`` accepts a :class:`CheckpointStore` (reused across attempts)
    and an optional ``fail_before`` node id that aborts the run just
    before that node executes — everything upstream is already
    checkpointed, so the next call resumes from there.
    """

    def run(
        self,
        workflow: ETLWorkflow,
        source_data: Mapping[str, list[Row]],
        check_schemas: bool = True,
        checkpoints: CheckpointStore | None = None,
        fail_before: str | None = None,
    ) -> ExecutionResult:
        workflow.validate()
        workflow.propagate_schemas()
        store = checkpoints if checkpoints is not None else CheckpointStore()

        flows: dict[object, list[Row]] = {}
        stats = ExecutionStats()
        targets: dict[str, list[Row]] = {}

        for node in workflow.topological_order():
            if fail_before is not None and node.id == fail_before:
                raise SimulatedFailure(node.id)
            if node.id in store:
                flows[node] = store.restore(node.id)
                if isinstance(node, RecordSet) and node.is_target:
                    targets[node.name] = flows[node]
                continue
            if isinstance(node, RecordSet):
                if node.is_source:
                    try:
                        rows = source_data[node.name]
                    except KeyError:
                        raise ExecutionError(
                            f"no data supplied for source {node.name!r}"
                        ) from None
                    if check_schemas:
                        check_rows_match_schema(
                            rows, node.schema, f"source {node.name}"
                        )
                    flows[node] = list(rows)
                else:
                    flows[node] = flows[workflow.providers(node)[0]]
                    if node.is_target:
                        targets[node.name] = flows[node]
            else:
                inputs = tuple(flows[p] for p in workflow.providers(node))
                flows[node] = self._run_activity(node, inputs, stats)
            store.save(node.id, flows[node])
        return ExecutionResult(targets=targets, stats=stats)
