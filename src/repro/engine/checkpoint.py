"""Resumable execution: checkpoints and recovery from mid-run failures.

ETL workflows run in tight night-time windows; when a load dies at 3 a.m.
the operator wants to resume, not restart (the paper cites Labio et al.,
"Efficient Resumption of Interrupted Warehouse Loads" [12], as related
work).  :class:`CheckpointingExecutor` persists each node's output flow
into a :class:`CheckpointStore` as it completes; a re-run against the
same store skips every checkpointed node and recomputes only the rest.

With an :class:`~repro.engine.batches.ExecutionBudget`, checkpointing is
**batch-granular**: each node's output is appended to a
:class:`PartialCheckpoint` one batch at a time, so a failure mid-node
leaves a durable prefix.  On resume, a row-wise node (every component of
kind FILTER/FUNCTION) keeps its prefix and recomputes only the suffix of
input rows it had not consumed; blocking and binary nodes discard the
partial and recompute whole (their accumulator state is not captured by
output batches alone).

Failures are injected by node id (``fail_before``) or by batch position
(``fail_after=(node_id, n)`` — die after the node's *n*-th output batch
is appended), which makes the recovery property mechanically testable:
for *any* failure point, failing + resuming must produce exactly the full
run's targets while recomputing only the work that had not completed.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.core.activity import Activity
from repro.core.recordset import RecordSet
from repro.core.flags import columnar_enabled
from repro.core.workflow import ETLWorkflow
from repro.engine.batches import ExecutionBudget, iter_batches
from repro.engine.columnar import Batch, FusedChainRunner, supports_columnar
from repro.engine.executor import (
    _UNSET,
    _resolve_run_args,
    ExecutionResult,
    ExecutionStats,
    Executor,
    iter_components,
)
from repro.engine.rows import Row, check_rows_match_schema
from repro.exceptions import ExecutionError
from repro.obs import Recorder, use_recorder

__all__ = [
    "SimulatedFailure",
    "PartialCheckpoint",
    "CheckpointStore",
    "CheckpointingExecutor",
]


class SimulatedFailure(ExecutionError):
    """Raised when execution reaches an injected failure point."""

    def __init__(self, node_id: str, after_batches: int | None = None):
        if after_batches is None:
            super().__init__(f"simulated failure before node {node_id}")
        else:
            super().__init__(
                f"simulated failure after batch {after_batches} "
                f"of node {node_id}"
            )
        self.node_id = node_id
        self.after_batches = after_batches


@dataclass
class PartialCheckpoint:
    """The durable prefix of one node's output, written batch by batch.

    ``consumed_rows`` is how many *input* rows produced those batches —
    the resume offset for row-wise nodes.  ``None`` marks the partial as
    non-resumable (blocking/binary node): its batches are only a crash
    artifact and the node recomputes whole.
    """

    batches: list[list[Row]] = field(default_factory=list)
    consumed_rows: int | None = 0

    @property
    def rows(self) -> list[Row]:
        return [row for batch in self.batches for row in batch]


@dataclass
class CheckpointStore:
    """Per-node output flows of (partially) completed runs."""

    flows: dict[str, list[Row]] = field(default_factory=dict)
    partials: dict[str, PartialCheckpoint] = field(default_factory=dict)

    def __contains__(self, node_id: object) -> bool:
        return node_id in self.flows

    def save(self, node_id: str, rows: list[Row]) -> None:
        self.flows[node_id] = list(rows)
        # A completed node's partial is subsumed by the full flow.
        self.partials.pop(node_id, None)

    def restore(self, node_id: str) -> list[Row]:
        return list(self.flows[node_id])

    def begin_partial(self, node_id: str, resumable: bool) -> PartialCheckpoint:
        partial = PartialCheckpoint(consumed_rows=0 if resumable else None)
        self.partials[node_id] = partial
        return partial

    def append_partial(
        self,
        partial: PartialCheckpoint,
        batch: Batch | list[Row],
        consumed_rows: int | None,
    ) -> None:
        # ``list(batch)`` builds row dicts from a columnar Batch and
        # copies a plain row list — partials always store rows, which
        # keeps restore paths and crash artifacts layout-independent.
        partial.batches.append(list(batch))
        if partial.consumed_rows is not None:
            partial.consumed_rows = consumed_rows

    def clear(self) -> None:
        self.flows.clear()
        self.partials.clear()

    @property
    def completed_nodes(self) -> frozenset[str]:
        return frozenset(self.flows)


class CheckpointingExecutor(Executor):
    """An :class:`Executor` that checkpoints node outputs and resumes.

    ``run`` accepts a :class:`CheckpointStore` (reused across attempts),
    an optional ``fail_before`` node id that aborts the run just before
    that node executes, and — when a ``budget`` sets a batch size — an
    optional ``fail_after=(node_id, n)`` that aborts after the node's
    *n*-th output batch was durably appended.  Everything already saved
    (including partial row-wise prefixes) is reused by the next call.
    """

    def run(
        self,
        workflow: ETLWorkflow,
        source_data: Mapping[str, list[Row]],
        *legacy,
        check_schemas: bool = _UNSET,  # type: ignore[assignment]
        checkpoints: CheckpointStore | None = _UNSET,  # type: ignore[assignment]
        fail_before: str | None = _UNSET,  # type: ignore[assignment]
        fail_after: tuple[str, int] | None = _UNSET,  # type: ignore[assignment]
        budget: ExecutionBudget | None = _UNSET,  # type: ignore[assignment]
        recorder: Recorder | None = None,
    ) -> ExecutionResult:
        (
            check_schemas,
            checkpoints,
            fail_before,
            fail_after,
            budget,
        ) = _resolve_run_args(
            "CheckpointingExecutor.run",
            legacy,
            ("check_schemas", "checkpoints", "fail_before", "fail_after",
             "budget"),
            (check_schemas, checkpoints, fail_before, fail_after, budget),
            (True, None, None, None, None),
        )
        if recorder is not None:
            with use_recorder(recorder):
                return self._checkpointed_run(
                    workflow, source_data, check_schemas, checkpoints,
                    fail_before, fail_after, budget,
                )
        return self._checkpointed_run(
            workflow, source_data, check_schemas, checkpoints, fail_before,
            fail_after, budget,
        )

    def _checkpointed_run(
        self,
        workflow: ETLWorkflow,
        source_data: Mapping[str, list[Row]],
        check_schemas: bool,
        checkpoints: CheckpointStore | None,
        fail_before: str | None,
        fail_after: tuple[str, int] | None,
        budget: ExecutionBudget | None,
    ) -> ExecutionResult:
        workflow.validate()
        workflow.propagate_schemas()
        store = checkpoints if checkpoints is not None else CheckpointStore()
        budget = budget if budget is not None else self.default_budget
        if fail_after is not None and budget is None:
            raise ExecutionError(
                "fail_after requires a budget (batch-granular mode)"
            )

        flows: dict[object, list[Row]] = {}
        stats = ExecutionStats()
        targets: dict[str, list[Row]] = {}

        for node in workflow.topological_order():
            if fail_before is not None and node.id == fail_before:
                raise SimulatedFailure(node.id)
            if node.id in store:
                flows[node] = store.restore(node.id)
                if isinstance(node, RecordSet) and node.is_target:
                    targets[node.name] = flows[node]
                continue
            if isinstance(node, RecordSet):
                if node.is_source:
                    try:
                        rows = source_data[node.name]
                    except KeyError:
                        raise ExecutionError(
                            f"no data supplied for source {node.name!r}"
                        ) from None
                    if check_schemas:
                        check_rows_match_schema(
                            rows, node.schema, f"source {node.name}"
                        )
                    flows[node] = list(rows)
                else:
                    flows[node] = flows[workflow.providers(node)[0]]
                    if node.is_target:
                        targets[node.name] = flows[node]
            else:
                inputs = tuple(flows[p] for p in workflow.providers(node))
                if budget is None:
                    flows[node] = self._run_activity(node, inputs, stats)
                else:
                    flows[node] = self._run_activity_batched(
                        node, inputs, stats, store, budget, fail_after
                    )
            store.save(node.id, flows[node])
        return ExecutionResult(targets=targets, stats=stats)

    def _run_activity_batched(
        self,
        activity: Activity,
        inputs: tuple[list[Row], ...],
        stats: ExecutionStats,
        store: CheckpointStore,
        budget: ExecutionBudget,
        fail_after: tuple[str, int] | None,
    ) -> list[Row]:
        """Run one node, appending its output to a partial checkpoint
        one batch at a time (and resuming a row-wise prefix if present)."""
        components = tuple(iter_components(activity))
        from repro.engine.streaming import is_row_wise

        row_wise = activity.is_unary and all(
            is_row_wise(component) for component in components
        )
        fail_at = (
            fail_after[1]
            if fail_after is not None and fail_after[0] == activity.id
            else None
        )

        partial = store.partials.get(activity.id)
        if (
            partial is not None
            and row_wise
            and partial.consumed_rows is not None
        ):
            # Durable prefix from the failed attempt: keep it, recompute
            # only the input suffix it had not consumed.
            start = partial.consumed_rows
        else:
            partial = store.begin_partial(activity.id, resumable=row_wise)
            start = 0

        appended = 0
        if row_wise:
            flow = inputs[0]
            runner = None
            if columnar_enabled() and all(
                supports_columnar(component, self.registry)
                for component in components
            ):
                runner = FusedChainRunner(self.context, self.registry)
                runner.add(components)
            for offset in range(start, len(flow), budget.batch_size):
                batch = flow[offset : offset + budget.batch_size]
                if runner is not None:
                    out, counts, _ = runner.run_batch(Batch.from_rows(batch))
                    for component, (rows_in, rows_out) in zip(
                        components, counts
                    ):
                        stats.record(component.id, rows_in, rows_out)
                else:
                    out = batch
                    for component in components:
                        operator = self.registry.get(component.template.name)
                        produced = operator(component, (out,), self.context)
                        stats.record(component.id, len(out), len(produced))
                        out = produced
                store.append_partial(partial, out, offset + len(batch))
                appended += 1
                if fail_at is not None and appended >= fail_at:
                    raise SimulatedFailure(activity.id, after_batches=appended)
            return partial.rows

        # Blocking/binary node: compute whole (accumulator state is not
        # reconstructible from output batches), then persist the output
        # batch-by-batch so the failure injection point still exists.
        produced = self._run_activity(activity, inputs, stats)
        for batch in iter_batches(produced, budget.batch_size):
            store.append_partial(partial, batch, None)
            appended += 1
            if fail_at is not None and appended >= fail_at:
                raise SimulatedFailure(activity.id, after_batches=appended)
        return produced
    # NB: blocking nodes with empty output never hit a fail_after point —
    # there is no batch boundary to fail on.
