"""Data-parallel partitioned streaming execution (engine shards).

The streaming engine (:mod:`repro.engine.streaming`) bounds *memory*;
this module bounds *wall-clock* by splitting a run across worker
processes.  The workflows it accepts are the warehouse-refresh shape the
paper optimizes toward: trees of row-wise activities (FILTER / FUNCTION,
including MERGE packages of them) joined by UNION nodes into one or more
targets.  For those, every source can be range-partitioned into ``N``
contiguous slices and each slice pushed through its own copy of the
pipeline, because row-wise chains commute with ordered concatenation:

    chain(slice_0 ++ slice_1 ++ ...) == chain(slice_0) ++ chain(slice_1) ++ ...

**Byte-identity contract.**  A partitioned run returns the same
``targets``, ``stats`` and ``rejects`` as the serial streaming run (and
therefore as the materializing run), for every shard count:

* *targets* — the serial union drains its inputs in port order, i.e. one
  source-to-target *leaf* at a time; the merge below concatenates
  leaf-major then shard-major, which reproduces exactly that order;
* *stats* — row counters are sums, so per-shard counts add up to the
  serial totals; union counters are synthesized from each leaf's flow
  size at the union, which is what the serial union records batch by
  batch;
* *rejects* — filters drop rows in flow order; the same leaf-major /
  shard-major merge applies.

``StreamingMetrics`` is *not* part of the contract: a sharded run
genuinely processes more (smaller) batches and its peak is per-process,
so ``batches_by_activity`` and ``peak_resident_rows`` describe the
sharded run itself (deterministically, but not serial-identically).

Workflows outside the partitionable shape (fan-out, blocking operators,
joins) **degrade** to the serial streaming path — with a
``RuntimeWarning`` and a bump of the ``engine.shards_degraded`` counter,
never silently.  Shard fan-out reuses the search plane's
:class:`~repro.core.search.parallel.WorkerPool` (fork-server preloads,
accounted degradation under ``engine.pool_degraded``), so a broken pool
also falls back to in-process shard execution without losing results.
"""

from __future__ import annotations

import itertools
import time
import warnings
from collections import Counter
from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.activity import Activity, CompositeActivity
from repro.core.flags import columnar_enabled
from repro.core.recordset import RecordSet
from repro.core.search.parallel import WorkerPool, preloaded, unload
from repro.core.workflow import ETLWorkflow
from repro.engine.batches import (
    ExecutionBudget,
    ResidentLedger,
    StreamingMetrics,
)
from repro.engine.columnar import Batch, FusedChainRunner, supports_columnar
from repro.engine.executor import (
    ExecutionResult,
    ExecutionStats,
    Executor,
    iter_components,
)
from repro.engine.rows import Row, check_rows_match_schema, freeze_row
from repro.engine.streaming import (
    ComponentMetrics,
    execute_streaming,
    is_row_wise,
)
from repro.exceptions import ExecutionError
from repro.obs import get_recorder

__all__ = [
    "LeafPath",
    "PartitionPlan",
    "partition_plan",
    "execute_partitioned",
    "shard_bounds",
]


@dataclass(frozen=True)
class LeafPath:
    """One source-to-target path through row-wise nodes and unions.

    ``steps`` runs from the source toward the target; each entry is
    ``("activity", node)`` for a row-wise (possibly composite) activity
    or ``("union", node)`` marking where this leaf's flow merges with
    its siblings.  Unions are pass-through per leaf — the marker exists
    so the executed plan can reconstruct the union's row counters.
    """

    source: RecordSet
    steps: tuple[tuple[str, Activity], ...]
    target: str


@dataclass(frozen=True)
class PartitionPlan:
    """A workflow decomposed into independently executable leaves.

    ``targets`` and ``activities`` are in topological order; ``leaves``
    are ordered by (target topological position, union port order) —
    exactly the order the serial streaming run materializes rows in.
    """

    workflow: ETLWorkflow
    targets: tuple[str, ...]
    leaves: tuple[LeafPath, ...]
    activities: tuple[Activity, ...]


def shard_bounds(num_rows: int, shards: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, end)`` slices splitting ``num_rows`` into
    ``shards`` near-equal parts (order-preserving range partitioning)."""
    return [
        (num_rows * shard // shards, num_rows * (shard + 1) // shards)
        for shard in range(shards)
    ]


def _is_union(node: Activity) -> bool:
    # Template-name dispatch, exactly like the serial streaming path:
    # rebinding a custom operator under "union" does not change how the
    # engine drains it.
    return (
        not isinstance(node, CompositeActivity)
        and node.template.name == "union"
    )


def _leaves_for(
    workflow: ETLWorkflow, node, target: str
) -> list[LeafPath]:
    """All leaves under ``node``, in the serial drain order (DFS over
    providers in port order)."""
    if isinstance(node, RecordSet):
        if node.is_source:
            return [LeafPath(source=node, steps=(), target=target)]
        return _leaves_for(workflow, workflow.providers(node)[0], target)
    if _is_union(node):
        leaves: list[LeafPath] = []
        for provider in workflow.providers(node):
            for leaf in _leaves_for(workflow, provider, target):
                leaves.append(
                    LeafPath(
                        source=leaf.source,
                        steps=leaf.steps + (("union", node),),
                        target=target,
                    )
                )
        return leaves
    return [
        LeafPath(
            source=leaf.source,
            steps=leaf.steps + (("activity", node),),
            target=target,
        )
        for leaf in _leaves_for(
            workflow, workflow.providers(node)[0], target
        )
    ]


def _plan_or_reason(
    workflow: ETLWorkflow,
) -> tuple[PartitionPlan | None, str | None]:
    """Build a :class:`PartitionPlan`, or explain why there isn't one."""
    workflow.validate()
    workflow.propagate_schemas()
    order = workflow.topological_order()
    for node in order:
        if len(workflow.consumers(node)) > 1:
            return None, f"fan-out at {node.id!r} (multiple consumers)"
    activities = tuple(n for n in order if isinstance(n, Activity))
    for node in activities:
        if _is_union(node):
            continue
        if not node.is_unary:
            return None, (
                f"activity {node.id!r} ({node.template.name}) is not "
                f"unary"
            )
        if not all(is_row_wise(c) for c in iter_components(node)):
            return None, (
                f"activity {node.id!r} ({node.template.name}) is not "
                f"row-wise"
            )
    target_nodes = [
        n for n in order if isinstance(n, RecordSet) and n.is_target
    ]
    if not target_nodes:
        return None, "workflow has no target recordsets"
    leaves: list[LeafPath] = []
    for target in target_nodes:
        leaves.extend(_leaves_for(workflow, target, target.name))
    return (
        PartitionPlan(
            workflow=workflow,
            targets=tuple(t.name for t in target_nodes),
            leaves=tuple(leaves),
            activities=activities,
        ),
        None,
    )


def partition_plan(workflow: ETLWorkflow) -> PartitionPlan:
    """The shard-execution plan for ``workflow``.

    Raises :class:`~repro.exceptions.ExecutionError` when the workflow
    is not partitionable (fan-out, blocking/binary activities);
    :func:`execute_partitioned` degrades to serial streaming instead of
    raising.
    """
    plan, reason = _plan_or_reason(workflow)
    if plan is None:
        raise ExecutionError(f"workflow is not partitionable: {reason}")
    return plan


# -- per-shard execution (runs inside workers) -------------------------------


def _source_batches(node, rows, batch_size, check_schemas, columnar):
    """Schema-checked source batches — the same check-is-the-column-build
    fast path as the serial streaming run (row indices in errors are
    shard-relative)."""
    where = f"source {node.name}"
    attrs = node.schema.attrs
    width = len(attrs)
    fast = check_schemas and columnar
    for start in range(0, len(rows), batch_size):
        chunk = rows[start : start + batch_size]
        if fast:
            try:
                if sum(map(len, chunk)) == width * len(chunk):
                    columns = {
                        name: [row[name] for row in chunk] for name in attrs
                    }
                    yield Batch.from_columns(columns, len(chunk))
                    continue
            except KeyError:
                pass
            check_rows_match_schema(
                chunk, node.schema, where, start_index=start
            )
        elif check_schemas:
            check_rows_match_schema(
                chunk, node.schema, where, start_index=start
            )
        yield Batch.from_rows(chunk)


def _leaf_program(leaf, registry, context, columnar, collect_rejects):
    """Compile one leaf into executable ops.

    Consecutive fusable activities share one :class:`FusedChainRunner`
    (the PR 7 kernels, unchanged); activities with custom/unfusable
    components run the row-at-a-time fallback; union markers only
    record counters.  Ops are ``("fused", runner, stage_ids)``,
    ``("row", node, components, reject_id)`` or ``("union", node_id)``.
    """
    ops: list[tuple] = []
    fused: tuple | None = None
    for kind, node in leaf.steps:
        if kind == "union":
            ops.append(("union", node.id))
            fused = None
            continue
        components = tuple(iter_components(node))
        reject_id = (
            node.id
            if collect_rejects and Executor.is_filter_like(node)
            else None
        )
        if columnar and all(
            supports_columnar(c, registry) for c in components
        ):
            if fused is None:
                fused = ("fused", FusedChainRunner(context, registry), [])
                ops.append(fused)
            fused[1].add(components, reject_id)
            fused[2].extend(c.id for c in components)
        else:
            ops.append(("row", node, components, reject_id))
            fused = None
    return ops


def _run_shard(
    plan: PartitionPlan,
    source_data: Mapping[str, list[Row]],
    shard: int,
    shards: int,
    budget: ExecutionBudget,
    check_schemas: bool,
    collect_rejects: bool,
    context,
    registry,
    columnar: bool,
) -> dict:
    """Execute every leaf on this shard's source slices (pure).

    Returns a picklable summary: per-leaf target rows and rejects, plus
    per-component row/batch counters, the shard's resident peak, and its
    wall-clock seconds (the parent records one ``engine.shard`` span per
    shard from these, so a trace shows shard skew).
    """
    shard_started = time.perf_counter()
    ledger = ResidentLedger(budget.max_resident_rows)
    processed: dict[str, int] = {}
    produced: dict[str, int] = {}
    batches: dict[str, int] = {}
    leaf_targets: list[list[Row]] = []
    leaf_rejects: list[dict[str, list[Row]]] = []
    batch_size = budget.batch_size

    def record(component_id: str, rows_in: int, rows_out: int) -> None:
        processed[component_id] = processed.get(component_id, 0) + rows_in
        produced[component_id] = produced.get(component_id, 0) + rows_out
        batches[component_id] = batches.get(component_id, 0) + 1

    for leaf in plan.leaves:
        try:
            rows = source_data[leaf.source.name]
        except KeyError:
            raise ExecutionError(
                f"no data supplied for source {leaf.source.name!r}"
            ) from None
        start, end = shard_bounds(len(rows), shards)[shard]
        program = _leaf_program(
            leaf, registry, context, columnar, collect_rejects
        )
        rejects: dict[str, list[Row]] = {}
        out_rows: list[Row] = []
        for batch in _source_batches(
            leaf.source, rows[start:end], batch_size, check_schemas, columnar
        ):
            ledger.acquire(leaf.source.id, len(batch))
            try:
                flow = batch
                for op in program:
                    if op[0] == "union":
                        record(op[1], len(flow), len(flow))
                        continue
                    if op[0] == "fused":
                        _, runner, stage_ids = op
                        out, counts, dropped = runner.run_batch(flow)
                        for index, (rows_in, rows_out) in enumerate(counts):
                            if rows_in > 0 or runner.stage_in_reject_bound(
                                index
                            ):
                                record(stage_ids[index], rows_in, rows_out)
                        for activity_id, dropped_rows in dropped.items():
                            if dropped_rows:
                                rejects.setdefault(
                                    activity_id, []
                                ).extend(dropped_rows)
                        flow = out
                    else:
                        _, node, components, reject_id = op
                        arrived = flow.to_rows()
                        out = arrived
                        if reject_id is not None:
                            for component in components:
                                operator = registry.get(
                                    component.template.name
                                )
                                made = operator(component, (out,), context)
                                record(component.id, len(out), len(made))
                                out = made
                            kept = Counter(freeze_row(row) for row in out)
                            bucket = rejects.setdefault(reject_id, [])
                            for row in arrived:
                                frozen = freeze_row(row)
                                if kept[frozen] > 0:
                                    kept[frozen] -= 1
                                else:
                                    bucket.append(row)
                        else:
                            for component in components:
                                if not out:
                                    break
                                operator = registry.get(
                                    component.template.name
                                )
                                made = operator(component, (out,), context)
                                record(component.id, len(out), len(made))
                                out = made
                        flow = Batch.from_rows(out)
                    if not flow:
                        break
                if flow:
                    out_rows.extend(flow.rows())
            finally:
                ledger.release(leaf.source.id, len(batch))
        leaf_targets.append(out_rows)
        leaf_rejects.append(rejects)
    return {
        "targets": leaf_targets,
        "rejects": leaf_rejects,
        "processed": processed,
        "produced": produced,
        "batches": batches,
        "peak": ledger.peak,
        "seconds": time.perf_counter() - shard_started,
    }


#: Unique preload tokens per partitioned run (parent-process only).
_TOKEN_IDS = itertools.count()


def _shard_task(args: tuple) -> dict:
    """Pool task: run one shard against the preloaded run payload."""
    token, shard, shards = args
    payload = preloaded(token)
    return _run_shard(
        payload["plan"],
        payload["source_data"],
        shard,
        shards,
        payload["budget"],
        payload["check_schemas"],
        payload["collect_rejects"],
        payload["context"],
        payload["registry"],
        payload["columnar"],
    )


# -- entry point --------------------------------------------------------------


def execute_partitioned(
    executor,
    workflow: ETLWorkflow,
    source_data: Mapping[str, list[Row]],
    budget: ExecutionBudget,
    shards: int,
    check_schemas: bool = True,
    collect_rejects: bool = False,
    jobs: int | None = None,
) -> ExecutionResult:
    """Run ``workflow`` as ``shards`` data-parallel streaming pipelines.

    ``jobs`` bounds the worker processes (default: one per shard;
    ``jobs=1`` executes the shards in-process — useful for tests, and
    byte-identical to the pooled run by construction).  Non-partitionable
    workflows degrade to :func:`execute_streaming` with a
    ``RuntimeWarning`` and an ``engine.shards_degraded`` counter bump.
    """
    shards = int(shards)
    if shards <= 1:
        return execute_streaming(
            executor,
            workflow,
            source_data,
            budget,
            check_schemas=check_schemas,
            collect_rejects=collect_rejects,
        )
    plan, reason = _plan_or_reason(workflow)
    if plan is None:
        recorder = get_recorder()
        if recorder.active:
            recorder.counter("engine.shards_degraded").add()
        warnings.warn(
            f"partitioned execution degraded to serial streaming: {reason}",
            RuntimeWarning,
            stacklevel=3,
        )
        return execute_streaming(
            executor,
            workflow,
            source_data,
            budget,
            check_schemas=check_schemas,
            collect_rejects=collect_rejects,
        )

    columnar = columnar_enabled()
    started = time.perf_counter()
    jobs = shards if jobs is None else max(1, int(jobs))
    if jobs > 1:
        token = f"engine.shard:{next(_TOKEN_IDS)}"
        pool = WorkerPool(jobs, degraded_counter="engine.pool_degraded")
        pool.preload(
            token,
            {
                "plan": plan,
                "source_data": dict(source_data),
                "budget": budget,
                "check_schemas": check_schemas,
                "collect_rejects": collect_rejects,
                "context": executor.context,
                "registry": executor.registry,
                "columnar": columnar,
            },
        )
        try:
            shard_results = pool.map(
                _shard_task,
                [(token, shard, shards) for shard in range(shards)],
            )
        finally:
            pool.close()
            unload(token)
    else:
        shard_results = [
            _run_shard(
                plan,
                source_data,
                shard,
                shards,
                budget,
                check_schemas,
                collect_rejects,
                executor.context,
                executor.registry,
                columnar,
            )
            for shard in range(shards)
        ]

    recorder = get_recorder()
    if recorder.active:
        for shard, result in enumerate(shard_results):
            recorder.record_span(
                "engine.shard",
                result.get("seconds", 0.0),
                shard=shard,
                shards=shards,
            )

    # Merge.  Registration order mirrors the serial pipeline build (topo
    # order, components in chain order) so the stats/metrics key order is
    # identical to a serial run's.
    stats = ExecutionStats()
    ordered_components: list[Activity] = []
    for node in plan.activities:
        for component in iter_components(node):
            stats.record(component.id, 0, 0)
            ordered_components.append(component)
    for result in shard_results:
        for component_id, rows_in in result["processed"].items():
            stats.record(
                component_id, rows_in, result["produced"][component_id]
            )

    targets: dict[str, list[Row]] = {name: [] for name in plan.targets}
    for leaf_index, leaf in enumerate(plan.leaves):
        bucket = targets[leaf.target]
        for result in shard_results:
            bucket.extend(result["targets"][leaf_index])

    rejects: dict[str, list[Row]] = {}
    if collect_rejects:
        for node in plan.activities:
            if Executor.is_filter_like(node):
                rejects[node.id] = []
        for leaf_index in range(len(plan.leaves)):
            for result in shard_results:
                for activity_id, rows in result["rejects"][
                    leaf_index
                ].items():
                    rejects[activity_id].extend(rows)

    batches_by_activity = {c.id: 0 for c in ordered_components}
    for result in shard_results:
        for component_id, count in result["batches"].items():
            batches_by_activity[component_id] += count
    peak = max((result["peak"] for result in shard_results), default=0)

    elapsed = time.perf_counter() - started
    metrics = {
        component.id: ComponentMetrics(
            activity=component,
            rows_in=stats.rows_processed[component.id],
            rows_out=stats.rows_output[component.id],
            batches=batches_by_activity[component.id],
        )
        for component in ordered_components
    }
    ledger = ResidentLedger(budget.max_resident_rows)
    ledger.peak = peak
    executor._streaming_finished(metrics, ledger, elapsed)
    return ExecutionResult(
        targets=targets,
        stats=stats,
        rejects=rejects,
        streaming=StreamingMetrics(
            batch_size=budget.batch_size,
            max_resident_rows=budget.max_resident_rows,
            peak_resident_rows=peak,
            spilled_rows=0,
            batches_by_activity=batches_by_activity,
        ),
    )
