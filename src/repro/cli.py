"""Command-line interface: optimize / render / lint / fuzz workflows.

Usage::

    python -m repro optimize flow.json --algorithm hs -o optimized.json
    python -m repro render flow.json --format dot > flow.dot
    python -m repro lint flow.json
    python -m repro impact flow.json --source SRC1 --attribute V2
    python -m repro run flow.json --data rows.json --max-resident-rows 10000
    python -m repro fuzz --seeds 50 --corpus .fuzz-corpus
    python -m repro serve --socket /tmp/repro.sock --workers 2
    python -m repro serve --port 7077 --metrics-port 9100
    python -m repro top --socket /tmp/repro.sock
    python -m repro optimize flow.json --telemetry spans.jsonl
    python -m repro report spans.jsonl
    python -m repro report spans.jsonl --trace TRACE_ID
    python -m repro explain flow.json --diff
    python -m repro explain flow.json --dot > plan.dot
    python -m repro report BENCH.json --compare benchmarks/baselines/BENCH.json

Workflows are exchanged in the JSON format of :mod:`repro.io.json_io`;
custom templates are not resolvable from the command line (use the
library API for those).

Every subcommand accepts ``--telemetry PATH``: the run records structured
spans/counters/gauges (see :mod:`repro.obs`) and writes them as JSONL to
``PATH`` on the way out; ``repro report PATH`` renders the file as
per-phase / per-operator summary tables.  ``repro explain --diff`` shows
the initial and optimized plans side by side with per-node cost deltas
attributed to the winning lineage steps; ``repro report --compare
BASELINE`` diffs two telemetry/bench files under per-metric regression
thresholds.

Exit codes: 0 on success, 1 when a check reports findings (lint/impact
diagnostics, fuzz violations, a telemetry file with no spans), 2 on bad
input (unreadable file, invalid JSON, unknown category, ...), 3 when
``report --compare`` detects a metric regression.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro import SearchBudget, optimize
from repro.core.lint import lint_workflow
from repro.core.impact import impact_of_attribute_removal
from repro.exceptions import ReproError
from repro.io import dumps, load, to_dot, to_text
from repro.obs import (
    NULL_RECORDER,
    Recorder,
    filter_trace,
    get_recorder,
    load_events,
    render_summary,
    render_trace,
    run_top,
    summarize,
    use_recorder,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "ETL workflow optimizer — reproduction of 'Optimizing ETL "
            "Processes in Data Warehouses' (ICDE 2005)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    cmd_optimize = commands.add_parser(
        "optimize", help="optimize a workflow and report the result"
    )
    cmd_optimize.add_argument("workflow", help="path to a workflow JSON file")
    cmd_optimize.add_argument(
        "--algorithm",
        default="hs",
        choices=["es", "hs", "greedy", "sa", "annealing"],
        help="search algorithm (default: hs)",
    )
    cmd_optimize.add_argument(
        "--max-states",
        type=int,
        default=None,
        help="state budget (any algorithm)",
    )
    cmd_optimize.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="wall-clock budget; best-so-far is reported when it trips",
    )
    cmd_optimize.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (default: 1 = serial; 0 = one per CPU)",
    )
    cmd_optimize.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "transposition-cache directory; warm re-runs of the same "
            "workflow skip re-exploration (default: in-memory only)"
        ),
    )
    cmd_optimize.add_argument(
        "--beam-width",
        type=int,
        default=None,
        help=(
            "HS only: keep at most this many frontier orderings per "
            "local-group exploration (default: unbeamed)"
        ),
    )
    cmd_optimize.add_argument(
        "--prune-dominated",
        action="store_true",
        help=(
            "drop states dominated by a cheaper already-seen state of "
            "the same dominance class (HS phase worklists, ES frontier)"
        ),
    )
    cmd_optimize.add_argument(
        "--bound",
        action="store_true",
        help=(
            "branch-and-bound: skip expanding states whose admissible "
            "lower bound cannot beat the incumbent best"
        ),
    )
    cmd_optimize.add_argument(
        "--output",
        "-o",
        default=None,
        help="write the optimized workflow JSON here",
    )

    cmd_explain = commands.add_parser(
        "explain",
        help="cost-annotated plan; --diff/--dot explain the optimization",
    )
    cmd_explain.add_argument("workflow", help="path to a workflow JSON file")
    cmd_explain.add_argument(
        "--algorithm",
        default="hs",
        choices=["es", "hs", "greedy", "sa", "annealing"],
        help="search algorithm for --diff/--dot (default: hs)",
    )
    cmd_explain.add_argument(
        "--max-states", type=int, default=None, help="state budget"
    )
    cmd_explain.add_argument(
        "--max-seconds", type=float, default=None, help="wall-clock budget"
    )
    cmd_explain.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (default: 1 = serial; 0 = one per CPU)",
    )
    cmd_explain.add_argument(
        "--cache-dir", default=None, help="transposition-cache directory"
    )
    cmd_explain.add_argument(
        "--diff",
        action="store_true",
        help=(
            "optimize, then show initial and best plans side by side with "
            "per-node cost deltas attributed to lineage steps"
        ),
    )
    cmd_explain.add_argument(
        "--dot",
        action="store_true",
        help=(
            "optimize, then emit Graphviz DOT of the best plan annotated "
            "with costs plus the winning search trace"
        ),
    )

    cmd_render = commands.add_parser(
        "render", help="render a workflow as DOT or text"
    )
    cmd_render.add_argument("workflow", help="path to a workflow JSON file")
    cmd_render.add_argument(
        "--format", default="text", choices=["text", "dot"], dest="fmt"
    )

    cmd_lint = commands.add_parser(
        "lint", help="check the naming-discipline contract"
    )
    cmd_lint.add_argument("workflow", help="path to a workflow JSON file")

    cmd_impact = commands.add_parser(
        "impact", help="what breaks if a source attribute disappears"
    )
    cmd_impact.add_argument("workflow", help="path to a workflow JSON file")
    cmd_impact.add_argument("--source", required=True)
    cmd_impact.add_argument("--attribute", required=True)

    cmd_run = commands.add_parser(
        "run", help="execute a workflow on JSON source data"
    )
    cmd_run.add_argument("workflow", help="path to a workflow JSON file")
    cmd_run.add_argument(
        "--data",
        required=True,
        help="JSON file mapping source recordset names to row lists",
    )
    cmd_run.add_argument(
        "--stream",
        action="store_true",
        help="use the streaming engine (implied by the options below)",
    )
    cmd_run.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="rows per streaming batch (default: 4096; implies --stream)",
    )
    cmd_run.add_argument(
        "--max-resident-rows",
        type=int,
        default=None,
        help="resident-row budget for streaming (implies --stream)",
    )
    cmd_run.add_argument(
        "--spill-dir",
        default=None,
        help="spill directory for over-budget buffers (implies --stream)",
    )
    cmd_run.add_argument(
        "--shards",
        type=int,
        default=None,
        help=(
            "split the run into N data-parallel streaming pipelines "
            "(targets/stats/rejects identical to serial; implies --stream)"
        ),
    )
    cmd_run.add_argument(
        "--trace",
        action="store_true",
        help="print a per-activity profile after the run",
    )
    cmd_run.add_argument(
        "--output",
        "-o",
        default=None,
        help="write the target flows as JSON here (default: counts only)",
    )

    cmd_fuzz = commands.add_parser(
        "fuzz",
        help="differential fuzzing of the transition system (Theorem 2)",
    )
    cmd_fuzz.add_argument(
        "--seeds", type=int, default=25, help="number of seeds (default: 25)"
    )
    cmd_fuzz.add_argument(
        "--base-seed", type=int, default=0, help="first seed (default: 0)"
    )
    cmd_fuzz.add_argument(
        "--categories",
        default="tiny,small",
        help="comma-separated workload categories (default: tiny,small)",
    )
    cmd_fuzz.add_argument(
        "--chain-length",
        type=int,
        default=8,
        help="max transitions per chain (default: 8)",
    )
    cmd_fuzz.add_argument(
        "--rows",
        type=int,
        default=60,
        help="rows per source recordset (default: 60)",
    )
    cmd_fuzz.add_argument(
        "--data-seed", type=int, default=0, help="source-data seed"
    )
    cmd_fuzz.add_argument(
        "--corpus",
        default=None,
        help="corpus directory: persists failing seeds and repro artifacts",
    )
    cmd_fuzz.add_argument(
        "--no-packaging",
        action="store_true",
        help="exclude the MER/SPL packaging transitions",
    )
    cmd_fuzz.add_argument(
        "--no-shrink",
        action="store_true",
        help="report failures without minimizing them",
    )
    cmd_fuzz.add_argument(
        "--no-delta-cost",
        action="store_true",
        help="skip the incremental-vs-full cost consistency oracle",
    )
    cmd_fuzz.add_argument(
        "--rel-tol",
        type=float,
        default=0.05,
        help="relative cost-conformance tolerance (default: 0.05)",
    )
    cmd_fuzz.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the seed loop (default: 1; 0 = per CPU)",
    )
    cmd_fuzz.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="fuzz through the streaming engine with this batch size",
    )
    cmd_fuzz.add_argument(
        "--max-resident-rows",
        type=int,
        default=None,
        help="resident-row budget for streaming fuzz runs",
    )

    cmd_serve = commands.add_parser(
        "serve",
        help=(
            "run the optimizer-as-a-service daemon (shared warm cache, "
            "result memo, bounded admission)"
        ),
    )
    cmd_serve.add_argument(
        "--host", default="127.0.0.1", help="TCP bind host (default: 127.0.0.1)"
    )
    cmd_serve.add_argument(
        "--port",
        type=int,
        default=7077,
        help="TCP port (default: 7077; 0 = ephemeral, printed at startup)",
    )
    cmd_serve.add_argument(
        "--socket",
        default=None,
        help="serve on this UNIX-domain socket path instead of TCP",
    )
    cmd_serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="optimizer worker threads (default: 1)",
    )
    cmd_serve.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker-process ceiling per search; client budgets asking for "
            "more are clamped (default: 1)"
        ),
    )
    cmd_serve.add_argument(
        "--queue-size",
        type=int,
        default=64,
        help="bounded job-queue depth; full means reject (default: 64)",
    )
    cmd_serve.add_argument(
        "--memo-capacity",
        type=int,
        default=1024,
        help="LRU capacity of the request-level result memo (default: 1024)",
    )
    cmd_serve.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "transposition-cache directory shared across requests "
            "(default: in-memory only — still shared while the daemon "
            "lives)"
        ),
    )
    cmd_serve.add_argument(
        "--tenant-max-inflight",
        type=int,
        default=8,
        help="queued-or-running jobs one tenant may hold (default: 8)",
    )
    cmd_serve.add_argument(
        "--tenant-max-states",
        type=int,
        default=None,
        help="ceiling on any request's max_states budget (default: none)",
    )
    cmd_serve.add_argument(
        "--tenant-max-seconds",
        type=float,
        default=None,
        help="ceiling on any request's max_seconds budget (default: none)",
    )
    cmd_serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help=(
            "also serve Prometheus text exposition over plain HTTP GET "
            "/metrics on this TCP port (0 = ephemeral, printed at startup)"
        ),
    )

    cmd_top = commands.add_parser(
        "top",
        help="live one-screen summary of a running serve daemon",
    )
    cmd_top.add_argument(
        "--host", default="127.0.0.1", help="daemon host (default: 127.0.0.1)"
    )
    cmd_top.add_argument(
        "--port", type=int, default=7077, help="daemon port (default: 7077)"
    )
    cmd_top.add_argument(
        "--socket",
        default=None,
        help="connect over this UNIX-domain socket path instead of TCP",
    )
    cmd_top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between polls (default: 2.0)",
    )
    cmd_top.add_argument(
        "--iterations",
        type=int,
        default=0,
        help="render this many screens then exit (default: 0 = forever)",
    )
    cmd_top.add_argument(
        "--exemplars",
        action="store_true",
        help="also show the slowest / failed request exemplar rings",
    )
    cmd_top.add_argument(
        "--no-clear",
        action="store_true",
        help="append screens instead of clearing the terminal between polls",
    )

    cmd_report = commands.add_parser(
        "report",
        help="summarize a telemetry file, or diff it against a baseline",
    )
    cmd_report.add_argument(
        "jsonl", help="telemetry JSONL (or bench JSON with --compare)"
    )
    cmd_report.add_argument(
        "--json",
        action="store_true",
        help="emit the summary (or diff) as JSON instead of tables",
    )
    cmd_report.add_argument(
        "--compare",
        metavar="BASELINE",
        default=None,
        help=(
            "diff the file against this baseline telemetry/bench file "
            "under per-metric regression thresholds; exit 3 on regression"
        ),
    )
    cmd_report.add_argument(
        "--fail-on-regress",
        metavar="PCT",
        type=float,
        default=None,
        help=(
            "override the gated metrics' regression threshold (percent); "
            "only meaningful with --compare"
        ),
    )
    cmd_report.add_argument(
        "--include-info",
        action="store_true",
        help="with --compare, also list informational (ungated) metrics",
    )
    cmd_report.add_argument(
        "--trace",
        metavar="TRACE_ID",
        default=None,
        dest="trace_id",
        help=(
            "filter the telemetry file to one request's span tree (the "
            "trace_id from a serve envelope or exemplar); exit 1 when no "
            "spans carry the id"
        ),
    )

    # Every subcommand records telemetry the same way.
    for subcommand in commands.choices.values():
        subcommand.add_argument(
            "--telemetry",
            metavar="PATH",
            default=None,
            help="record spans/counters/gauges and write them as JSONL here",
        )
    return parser


def _cmd_optimize(args) -> int:
    workflow = load(args.workflow)
    budget = SearchBudget(
        max_states=args.max_states,
        max_seconds=args.max_seconds,
        jobs=args.jobs,
        cache=args.cache_dir,
        beam_width=args.beam_width,
        prune_dominated=args.prune_dominated,
        bound=args.bound,
    )
    result = optimize(workflow, algorithm=args.algorithm, budget=budget)
    print(result.summary())
    print(f"initial: {result.initial.signature}")
    print(f"best   : {result.best.signature}")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(dumps(result.best.workflow))
        print(f"optimized workflow written to {args.output}")
    return 0


def _cmd_explain(args) -> int:
    from repro.io.explain import explain, explain_diff, explain_dot

    workflow = load(args.workflow)
    if not args.diff and not args.dot:
        print(explain(workflow))
        return 0
    budget = SearchBudget(
        max_states=args.max_states,
        max_seconds=args.max_seconds,
        jobs=args.jobs,
        cache=args.cache_dir,
    )
    result = optimize(workflow, algorithm=args.algorithm, budget=budget)
    if args.diff:
        print(result.summary())
        print()
        print(
            explain_diff(
                result.initial.workflow,
                result.best.workflow,
                lineage=result.lineage,
            )
        )
    if args.dot:
        print(
            explain_dot(
                result.best.workflow,
                lineage=result.lineage,
                title=f"{result.algorithm}: best plan",
            )
        )
    return 0


def _cmd_render(args) -> int:
    workflow = load(args.workflow)
    if args.fmt == "dot":
        print(to_dot(workflow))
    else:
        print(to_text(workflow))
    return 0


def _cmd_lint(args) -> int:
    workflow = load(args.workflow)
    findings = lint_workflow(workflow)
    if not findings:
        print("clean: the workflow honours the naming principle")
        return 0
    for finding in findings:
        print(finding)
    return 1


def _cmd_impact(args) -> int:
    workflow = load(args.workflow)
    report = impact_of_attribute_removal(workflow, args.source, args.attribute)
    if report.clean:
        print(
            f"removing {args.source}.{args.attribute} breaks nothing "
            "(it is never used)"
        )
        return 0
    for line in report.diagnostics:
        print(line)
    return 1


def _budget_from_args(args, force: bool = False):
    """An ExecutionBudget from ``--stream``-family flags, or ``None``."""
    from repro.engine.batches import DEFAULT_BATCH_SIZE, ExecutionBudget

    wants_stream = force or any(
        value is not None
        for value in (args.batch_size, args.max_resident_rows,
                      getattr(args, "spill_dir", None))
    )
    if not wants_stream:
        return None
    return ExecutionBudget(
        batch_size=(
            args.batch_size if args.batch_size is not None
            else DEFAULT_BATCH_SIZE
        ),
        max_resident_rows=args.max_resident_rows,
        spill_dir=getattr(args, "spill_dir", None),
    )


def _cmd_run(args) -> int:
    from repro.engine import Executor
    from repro.engine.tracing import TracingExecutor
    from repro.io.atomic import atomic_write_json

    workflow = load(args.workflow)
    with open(args.data, encoding="utf-8") as handle:
        source_data = json.load(handle)
    shards = args.shards
    budget = _budget_from_args(
        args, force=args.stream or (shards is not None and shards > 1)
    )
    # Telemetry wants the per-operator spans only TracingExecutor records.
    tracing = args.trace or get_recorder().active
    executor = TracingExecutor() if tracing else Executor()
    result = executor.run(
        workflow, source_data, budget=budget, shards=shards
    )
    for name in sorted(result.targets):
        print(f"target {name}: {len(result.targets[name])} row(s)")
    print(f"rows processed: {result.stats.total_rows_processed}")
    if result.streaming is not None:
        streaming = result.streaming
        budget_note = (
            f" (budget {streaming.max_resident_rows})"
            if streaming.max_resident_rows is not None
            else ""
        )
        print(
            f"streaming: batch size {streaming.batch_size}, peak resident "
            f"rows {streaming.peak_resident_rows}{budget_note}, "
            f"{streaming.spilled_rows} row(s) spilled"
        )
    if args.trace:
        print(executor.last_trace.render())
    if args.output:
        atomic_write_json(args.output, result.targets, sort_keys=False)
        print(f"target flows written to {args.output}")
    return 0


def _cmd_fuzz(args) -> int:
    # Imported lazily: the fuzz stack pulls in the generator and engine,
    # which the file-based subcommands never need.
    from repro.fuzz import FuzzConfig, OracleConfig, run_fuzz

    categories = tuple(
        part.strip() for part in args.categories.split(",") if part.strip()
    )
    config = FuzzConfig(
        categories=categories,
        chain_length=args.chain_length,
        rows_per_source=args.rows,
        data_seed=args.data_seed,
        include_packaging=not args.no_packaging,
        oracle=OracleConfig(rel_tol=args.rel_tol),
        execution_budget=_budget_from_args(args),
        check_delta_cost=not args.no_delta_cost,
    )
    report = run_fuzz(
        config,
        seeds=args.seeds,
        base_seed=args.base_seed,
        corpus_dir=args.corpus,
        shrink=not args.no_shrink,
        jobs=args.jobs,
    )
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_serve(args) -> int:
    # Imported lazily: the daemon stack pulls in the full search plane,
    # which the file-based subcommands never need.
    from repro.serve import OptimizerServer, ServeConfig, TenantPolicy

    config = ServeConfig(
        host=args.host,
        port=args.port,
        unix_socket=args.socket,
        workers=args.workers,
        max_jobs=args.jobs,
        queue_size=args.queue_size,
        memo_capacity=args.memo_capacity,
        cache=args.cache_dir,
        tenant=TenantPolicy(
            max_inflight=args.tenant_max_inflight,
            max_states=args.tenant_max_states,
            max_seconds=args.tenant_max_seconds,
        ),
        metrics_port=args.metrics_port,
    )
    server = OptimizerServer(config)

    import asyncio

    async def main() -> None:
        await server.start()
        address = server.address
        if isinstance(address, tuple):
            print(f"serving on {address[0]}:{address[1]}", flush=True)
        else:
            print(f"serving on unix:{address}", flush=True)
        if server.metrics_address is not None:
            host, port = server.metrics_address
            print(f"metrics on http://{host}:{port}/metrics", flush=True)
        await server.serve_until_shutdown()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    print("daemon stopped")
    return 0


def _cmd_top(args) -> int:
    # Imported lazily, same as _cmd_serve: the client pulls in the serve
    # protocol stack.
    from repro.serve import ServeClient

    address = args.socket if args.socket else (args.host, args.port)
    clear = sys.stdout.isatty() and not args.no_clear
    with ServeClient(address) as client:
        try:
            run_top(
                client,
                interval=args.interval,
                iterations=args.iterations,
                show_exemplars=args.exemplars,
                clear=clear,
            )
        except KeyboardInterrupt:
            pass
    return 0


def _cmd_report(args) -> int:
    if args.trace_id is not None:
        events = load_events(args.jsonl)
        trace_events = filter_trace(events, args.trace_id)
        if args.json:
            print(json.dumps(trace_events, indent=2, sort_keys=True))
        else:
            print(render_trace(trace_events))
        has_spans = any(
            event.get("type") == "span" for event in trace_events
        )
        return 0 if has_spans else 1
    if args.compare is not None:
        from repro.obs.diff import compare_files

        diff = compare_files(
            args.compare, args.jsonl, fail_threshold=args.fail_on_regress
        )
        if args.json:
            print(json.dumps(diff.to_dict(), indent=2, sort_keys=True))
        else:
            print(diff.render(include_info=args.include_info))
        return 0 if diff.ok else 3
    events = load_events(args.jsonl)
    summary = summarize(events)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(render_summary(summary))
    return 0 if summary["span_events"] else 1


_HANDLERS = {
    "optimize": _cmd_optimize,
    "explain": _cmd_explain,
    "render": _cmd_render,
    "lint": _cmd_lint,
    "impact": _cmd_impact,
    "run": _cmd_run,
    "fuzz": _cmd_fuzz,
    "serve": _cmd_serve,
    "top": _cmd_top,
    "report": _cmd_report,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    telemetry_path = getattr(args, "telemetry", None)
    recorder = Recorder() if telemetry_path else NULL_RECORDER
    try:
        try:
            with use_recorder(recorder):
                with recorder.span(f"cli.{args.command}"):
                    code = _HANDLERS[args.command](args)
        finally:
            if telemetry_path:
                recorder.flush_jsonl(telemetry_path)
        # Flush inside the try so an EPIPE from buffered output surfaces
        # here (where it is handled) instead of at interpreter shutdown
        # (where it would turn into exit code 120 and stderr noise).
        sys.stdout.flush()
        return code
    except BrokenPipeError:
        # `repro render … | head` pipelines: the consumer closing the pipe
        # early is not an error.  Point stdout at devnull so the
        # interpreter's exit flush does not raise a second time.
        try:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        except (OSError, ValueError):
            pass
        return 0
    except (ReproError, OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
