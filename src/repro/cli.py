"""Command-line interface: optimize / render / lint workflows from JSON.

Usage::

    python -m repro optimize flow.json --algorithm hs -o optimized.json
    python -m repro render flow.json --format dot > flow.dot
    python -m repro lint flow.json
    python -m repro impact flow.json --source SRC1 --attribute V2

Workflows are exchanged in the JSON format of :mod:`repro.io.json_io`;
custom templates are not resolvable from the command line (use the
library API for those).
"""

from __future__ import annotations

import argparse
import sys

from repro import optimize
from repro.core.lint import lint_workflow
from repro.core.impact import impact_of_attribute_removal
from repro.io import dumps, load, to_dot, to_text

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "ETL workflow optimizer — reproduction of 'Optimizing ETL "
            "Processes in Data Warehouses' (ICDE 2005)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    cmd_optimize = commands.add_parser(
        "optimize", help="optimize a workflow and report the result"
    )
    cmd_optimize.add_argument("workflow", help="path to a workflow JSON file")
    cmd_optimize.add_argument(
        "--algorithm",
        default="hs",
        choices=["es", "hs", "greedy"],
        help="search algorithm (default: hs)",
    )
    cmd_optimize.add_argument(
        "--max-states",
        type=int,
        default=None,
        help="state budget (exhaustive search only)",
    )
    cmd_optimize.add_argument(
        "--output",
        "-o",
        default=None,
        help="write the optimized workflow JSON here",
    )

    cmd_render = commands.add_parser(
        "render", help="render a workflow as DOT or text"
    )
    cmd_render.add_argument("workflow", help="path to a workflow JSON file")
    cmd_render.add_argument(
        "--format", default="text", choices=["text", "dot"], dest="fmt"
    )

    cmd_lint = commands.add_parser(
        "lint", help="check the naming-discipline contract"
    )
    cmd_lint.add_argument("workflow", help="path to a workflow JSON file")

    cmd_impact = commands.add_parser(
        "impact", help="what breaks if a source attribute disappears"
    )
    cmd_impact.add_argument("workflow", help="path to a workflow JSON file")
    cmd_impact.add_argument("--source", required=True)
    cmd_impact.add_argument("--attribute", required=True)
    return parser


def _cmd_optimize(args) -> int:
    workflow = load(args.workflow)
    kwargs = {}
    if args.algorithm == "es" and args.max_states is not None:
        kwargs["max_states"] = args.max_states
    result = optimize(workflow, algorithm=args.algorithm, **kwargs)
    print(result.summary())
    print(f"initial: {result.initial.signature}")
    print(f"best   : {result.best.signature}")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(dumps(result.best.workflow))
        print(f"optimized workflow written to {args.output}")
    return 0


def _cmd_render(args) -> int:
    workflow = load(args.workflow)
    if args.fmt == "dot":
        print(to_dot(workflow))
    else:
        print(to_text(workflow))
    return 0


def _cmd_lint(args) -> int:
    workflow = load(args.workflow)
    findings = lint_workflow(workflow)
    if not findings:
        print("clean: the workflow honours the naming principle")
        return 0
    for finding in findings:
        print(finding)
    return 1


def _cmd_impact(args) -> int:
    workflow = load(args.workflow)
    report = impact_of_attribute_removal(workflow, args.source, args.attribute)
    if report.clean:
        print(
            f"removing {args.source}.{args.attribute} breaks nothing "
            "(it is never used)"
        )
        return 0
    for line in report.diagnostics:
        print(line)
    return 1


_HANDLERS = {
    "optimize": _cmd_optimize,
    "render": _cmd_render,
    "lint": _cmd_lint,
    "impact": _cmd_impact,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
