"""repro — a reproduction of *Optimizing ETL Processes in Data Warehouses*
(Alkis Simitsis, Panos Vassiliadis, Timos Sellis; ICDE 2005).

The library models an ETL workflow as a DAG of activities and recordsets,
generates equivalent rewritings through the paper's five transitions
(swap, factorize, distribute, merge, split), and searches the resulting
state space for a minimum-cost design with four algorithms: exhaustive
(ES), heuristic (HS), greedy (HS-Greedy), and simulated annealing (SA —
an extension beyond the paper).

Quick start::

    from repro import SearchBudget, optimize
    from repro.workloads import fig1_workflow

    result = optimize(fig1_workflow().workflow, algorithm="heuristic")
    print(result.summary())

    # Parallel + cached: four workers, on-disk transposition cache.
    result = optimize(
        fig1_workflow().workflow,
        algorithm="hs",
        budget=SearchBudget(jobs=4, cache=True),
    )

See ``examples/`` for runnable scenarios and ``DESIGN.md`` for the full
system inventory.
"""

from __future__ import annotations

from repro.core import (
    Activity,
    CompositeActivity,
    ETLWorkflow,
    NamingRegistry,
    RecordSet,
    RecordSetKind,
    Schema,
    WorkflowBuilder,
    state_signature,
    symbolically_equivalent,
)
from repro.core.cost import (
    CostModel,
    LinearCostModel,
    ProcessedRowsCostModel,
    estimate,
)
from repro.core.search import (
    HSConfig,
    annealing_search,
    OptimizationResult,
    SearchBudget,
    TranspositionCache,
    exhaustive_search,
    greedy_search,
    heuristic_search,
    optimize_many,
    run_search as _run_search,
)
from repro.exceptions import ReproError

__version__ = "1.1.0"

__all__ = [
    "Activity",
    "CompositeActivity",
    "ETLWorkflow",
    "NamingRegistry",
    "RecordSet",
    "RecordSetKind",
    "Schema",
    "WorkflowBuilder",
    "state_signature",
    "symbolically_equivalent",
    "CostModel",
    "ProcessedRowsCostModel",
    "LinearCostModel",
    "estimate",
    "HSConfig",
    "OptimizationResult",
    "SearchBudget",
    "TranspositionCache",
    "exhaustive_search",
    "heuristic_search",
    "greedy_search",
    "annealing_search",
    "optimize",
    "optimize_many",
    "ReproError",
    "__version__",
]

#: Kwargs superseded by ``budget=SearchBudget(...)`` (or, for ``config``,
#: by calling the algorithm function directly with its tuning knobs).
_DEPRECATED_KWARGS = ("max_states", "max_seconds", "config")


def optimize(
    workflow: ETLWorkflow,
    algorithm: str = "heuristic",
    model: CostModel | None = None,
    budget: SearchBudget | None = None,
    **kwargs,
) -> OptimizationResult:
    """Optimize an ETL workflow with one of the four algorithms.

    Args:
        workflow: the initial state ``S0``.
        algorithm: ``"exhaustive"``/``"es"``, ``"heuristic"``/``"hs"``,
            ``"greedy"``/``"hs-greedy"`` or ``"annealing"``/``"sa"``
            (case-insensitive).
        model: cost model; defaults to the paper's processed-rows model.
        budget: uniform :class:`SearchBudget` — ``max_states`` /
            ``max_seconds`` stopping criteria plus the ``jobs`` (worker
            processes) and ``cache`` (transposition cache) execution
            knobs, honoured by every algorithm.
        **kwargs: algorithm-specific options (``merge_constraints`` for
            HS/greedy, ``seed``/``steps`` for annealing, ``strategy`` for
            ES).  The legacy per-algorithm budget spellings
            (``max_states=``, ``max_seconds=``, ``config=HSConfig(...)``)
            still work but emit a :class:`DeprecationWarning` — pass
            ``budget=SearchBudget(...)`` instead.

    Returns:
        The :class:`OptimizationResult` with the best state found and the
        search statistics the paper's tables report.
    """
    import warnings

    legacy = [key for key in _DEPRECATED_KWARGS if key in kwargs]
    if legacy:
        warnings.warn(
            f"optimize(..., {', '.join(f'{key}=' for key in legacy)}...) is "
            "deprecated; pass budget=SearchBudget(max_states=..., "
            "max_seconds=...) instead (HSConfig tuning knobs stay available "
            "on heuristic_search/greedy_search directly)",
            DeprecationWarning,
            stacklevel=2,
        )
    if budget is None:
        budget = SearchBudget(
            max_states=kwargs.pop("max_states", None),
            max_seconds=kwargs.pop("max_seconds", None),
        )
    elif any(key in kwargs for key in ("max_states", "max_seconds")):
        raise ReproError(
            "pass stopping criteria either through budget=SearchBudget(...) "
            "or through the legacy max_states=/max_seconds= keywords, not both"
        )
    return _run_search(algorithm, workflow, model=model, budget=budget, **kwargs)
