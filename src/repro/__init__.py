"""repro — a reproduction of *Optimizing ETL Processes in Data Warehouses*
(Alkis Simitsis, Panos Vassiliadis, Timos Sellis; ICDE 2005).

The library models an ETL workflow as a DAG of activities and recordsets,
generates equivalent rewritings through the paper's five transitions
(swap, factorize, distribute, merge, split), and searches the resulting
state space for a minimum-cost design with three algorithms: exhaustive
(ES), heuristic (HS), and greedy (HS-Greedy).

Quick start::

    from repro import optimize
    from repro.workloads import fig1_workflow

    result = optimize(fig1_workflow().workflow, algorithm="heuristic")
    print(result.summary())

See ``examples/`` for runnable scenarios and ``DESIGN.md`` for the full
system inventory.
"""

from __future__ import annotations

from repro.core import (
    Activity,
    CompositeActivity,
    ETLWorkflow,
    NamingRegistry,
    RecordSet,
    RecordSetKind,
    Schema,
    WorkflowBuilder,
    state_signature,
    symbolically_equivalent,
)
from repro.core.cost import (
    CostModel,
    LinearCostModel,
    ProcessedRowsCostModel,
    estimate,
)
from repro.core.search import (
    HSConfig,
    annealing_search,
    OptimizationResult,
    exhaustive_search,
    greedy_search,
    heuristic_search,
)
from repro.exceptions import ReproError

__version__ = "1.0.0"

__all__ = [
    "Activity",
    "CompositeActivity",
    "ETLWorkflow",
    "NamingRegistry",
    "RecordSet",
    "RecordSetKind",
    "Schema",
    "WorkflowBuilder",
    "state_signature",
    "symbolically_equivalent",
    "CostModel",
    "ProcessedRowsCostModel",
    "LinearCostModel",
    "estimate",
    "HSConfig",
    "OptimizationResult",
    "exhaustive_search",
    "heuristic_search",
    "greedy_search",
    "annealing_search",
    "optimize",
    "ReproError",
    "__version__",
]

_ALGORITHMS = {
    "annealing": annealing_search,
    "sa": annealing_search,
    "exhaustive": exhaustive_search,
    "es": exhaustive_search,
    "heuristic": heuristic_search,
    "hs": heuristic_search,
    "greedy": greedy_search,
    "hs-greedy": greedy_search,
}


def optimize(
    workflow: ETLWorkflow,
    algorithm: str = "heuristic",
    model: CostModel | None = None,
    **kwargs,
) -> OptimizationResult:
    """Optimize an ETL workflow with one of the paper's algorithms.

    Args:
        workflow: the initial state ``S0``.
        algorithm: ``"exhaustive"``/``"es"``, ``"heuristic"``/``"hs"`` or
            ``"greedy"``/``"hs-greedy"`` (case-insensitive).
        model: cost model; defaults to the paper's processed-rows model.
        **kwargs: forwarded to the chosen algorithm (e.g. ``max_states``
            for ES, ``merge_constraints``/``config`` for HS).

    Returns:
        The :class:`OptimizationResult` with the best state found and the
        search statistics the paper's tables report.
    """
    try:
        search = _ALGORITHMS[algorithm.lower()]
    except KeyError:
        raise ReproError(
            f"unknown algorithm {algorithm!r}; choose one of "
            f"{sorted(set(_ALGORITHMS))}"
        ) from None
    return search(workflow, model=model, **kwargs)
