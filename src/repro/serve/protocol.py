"""The serve wire protocol: line-delimited JSON requests and responses.

One connection carries any number of newline-terminated JSON objects in
each direction.  Every request names an ``op`` and may carry a client
``id`` that all messages answering it echo back, so clients can pipeline
requests over one connection:

``optimize``
    ``{"op": "optimize", "id": 1, "workflow": {...}, "algorithm": "hs",
    "budget": {"max_states": ..., "beam_width": ...}, "tenant": "acme",
    "model": "processed_rows", "stream": true}``

    With ``stream`` on, the daemon emits ``{"id": 1, "event": ...}``
    progress lines (queue admission, run start, ``search.*`` telemetry
    spans) before the final response.  The final response carries the
    full serialized :class:`~repro.core.search.result.OptimizationResult`
    under ``"result"`` plus ``"served_from"`` (``"memo"`` or
    ``"search"``) and ``"cache_hits"`` (memo hit + transposition hits).

``status`` / ``stats``
    Daemon liveness (queue depth, in-flight, uptime, workers) and
    effectiveness counters (memo and transposition hit rates, per-tenant
    request counts, latency histogram summaries).

``metrics``
    The full Prometheus text exposition (the same document the optional
    ``--metrics-port`` HTTP endpoint serves) under ``"text"``.

``exemplars``
    The bounded rings of slowest / most recently failed requests, each
    with its full span tree, budget, and tenant tags.

``shutdown``
    Acknowledge, then stop accepting work and exit cleanly once in-flight
    requests drain.

Errors are responses with ``"ok": false`` and an ``"error"`` string plus
a machine-readable ``"code"`` (``bad-request``, ``queue-full``,
``tenant-limit``, ``search-error``).  A line that does not parse as a
JSON object is answered with ``bad-request`` and the connection stays
usable — framing is per line, so one bad line cannot desynchronize the
stream.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.cost.model import (
    CostModel,
    LinearCostModel,
    ProcessedRowsCostModel,
)
from repro.core.search.budget import SearchBudget
from repro.core.search.result import OptimizationResult
from repro.core.workflow import ETLWorkflow
from repro.exceptions import ReproError
from repro.io.json_io import workflow_from_dict, workflow_to_dict

__all__ = [
    "PROTOCOL_VERSION",
    "OPS",
    "MODELS",
    "ProtocolError",
    "encode",
    "decode",
    "budget_from_dict",
    "budget_to_dict",
    "resolve_model",
    "model_key",
    "result_to_dict",
    "workflow_from_request",
]

PROTOCOL_VERSION = 1

#: Every request op the daemon understands.
OPS = (
    "optimize",
    "status",
    "stats",
    "metrics",
    "exemplars",
    "ping",
    "shutdown",
)

#: Cost models selectable over the wire.  Closures and custom models are
#: not shippable through a JSON protocol; the registry covers the
#: paper's models and keeps the memo key printable.
MODELS: dict[str, type[CostModel]] = {
    "processed_rows": ProcessedRowsCostModel,
    "linear": LinearCostModel,
}

#: SearchBudget fields a request may set.  ``cache`` is deliberately
#: absent — the daemon owns the shared cache — and ``jobs`` is clamped
#: by the server's ``max_jobs``.
_BUDGET_FIELDS = (
    "max_states",
    "max_seconds",
    "jobs",
    "beam_width",
    "prune_dominated",
    "bound",
)


class ProtocolError(ReproError):
    """A malformed or unanswerable request (maps to ``bad-request``)."""


def encode(message: dict[str, Any]) -> bytes:
    """One wire line: compact JSON, sorted keys, newline-terminated.

    Sorted keys + compact separators make equal payloads byte-equal on
    the wire, which is what the determinism tests compare.
    """
    return (
        json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode(line: bytes | str) -> dict[str, Any]:
    """Parse one wire line into a message dict (:class:`ProtocolError` on
    anything that is not a JSON object)."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        message = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"undecodable request line: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(message).__name__}"
        )
    return message


def budget_from_dict(data: dict[str, Any] | None) -> SearchBudget:
    """A :class:`SearchBudget` from a request's ``budget`` object.

    Unknown keys raise — a typo'd knob silently ignored would return a
    differently-optimized plan, the worst kind of wrong answer.
    """
    if data is None:
        return SearchBudget()
    if not isinstance(data, dict):
        raise ProtocolError("budget must be a JSON object")
    unknown = sorted(set(data) - set(_BUDGET_FIELDS))
    if unknown:
        raise ProtocolError(
            f"unknown budget field(s) {', '.join(unknown)}; "
            f"valid: {', '.join(_BUDGET_FIELDS)}"
        )
    try:
        return SearchBudget(**{key: data[key] for key in data})
    except (ReproError, TypeError) as exc:
        raise ProtocolError(f"invalid budget: {exc}") from None


def budget_to_dict(budget: SearchBudget) -> dict[str, Any]:
    """The request-settable knobs of a budget (for echoes and memo keys)."""
    return {field: getattr(budget, field) for field in _BUDGET_FIELDS}


def resolve_model(name: str | None) -> CostModel:
    """Instantiate a registered cost model (default: processed rows)."""
    if name is None:
        return ProcessedRowsCostModel()
    try:
        return MODELS[name]()
    except KeyError:
        raise ProtocolError(
            f"unknown cost model {name!r}; choose one of {sorted(MODELS)}"
        ) from None


def model_key(name: str | None) -> str:
    """The memo-key component for a request's model selection."""
    return name if name is not None else "processed_rows"


def workflow_from_request(data: Any) -> ETLWorkflow:
    """The request's ``workflow`` document as a validated workflow."""
    if not isinstance(data, dict):
        raise ProtocolError("optimize request needs a workflow object")
    try:
        return workflow_from_dict(data)
    except (ReproError, KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid workflow document: {exc}") from None


def result_to_dict(result: OptimizationResult) -> dict[str, Any]:
    """Serialize an :class:`OptimizationResult` for the wire (and the memo).

    Everything the determinism guarantee covers — cost, plan, lineage —
    round-trips losslessly; ``elapsed_seconds`` is the *search* time of
    the run that produced the value (a memo hit replays it unchanged,
    the envelope's ``latency_seconds`` is what the client actually
    waited).
    """
    return {
        "algorithm": result.algorithm,
        "initial_cost": result.initial.cost,
        "initial_signature": result.initial.signature,
        "best_cost": result.best.cost,
        "best_signature": result.best.signature,
        "best_workflow": workflow_to_dict(result.best.workflow),
        "improvement_percent": result.improvement_percent,
        "visited_states": result.visited_states,
        "elapsed_seconds": result.elapsed_seconds,
        "completed": result.completed,
        "cache_hits": result.cache_hits,
        "jobs": result.jobs,
        "lineage": result.lineage_dicts(),
        "transition_mix": result.transition_mix(),
    }
