"""Bounded exemplar rings: the N slowest and N most recent failed requests.

A p99-slow optimize request is only diagnosable after the fact if
*something* kept its span tree — but keeping every request's tree is
always-on full tracing, which a production daemon cannot afford.  The
:class:`ExemplarStore` is the middle ground the tentpole asks for: the
daemon records every search-served request here, the store keeps only
the slowest ``capacity`` of them (a min-heap on latency, so a new
request evicts the *least* slow exemplar) plus a ring of the most
recent failures, and the ``exemplars`` protocol op (or ``repro top
--exemplars``) dumps them with full span trees, budget, and tenant
tags.

Exemplars are plain JSON-able dicts; span lists are capped so a
pathological request cannot balloon daemon memory.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from collections import deque
from typing import Any

__all__ = ["ExemplarStore", "DEFAULT_EXEMPLARS", "SPAN_CAP"]

#: Default ring size for both the slowest and the failed ring.
DEFAULT_EXEMPLARS = 8

#: Max span events kept per exemplar; the rest are dropped and counted.
SPAN_CAP = 512


class ExemplarStore:
    """Thread-safe bounded rings of slow and failed request exemplars."""

    def __init__(self, capacity: int = DEFAULT_EXEMPLARS):
        self.capacity = max(1, int(capacity))
        self._lock = threading.Lock()
        self._seq = itertools.count()
        #: Min-heap of (latency, seq, exemplar): the root is the least
        #: slow kept exemplar, which is exactly what a faster newcomer
        #: must beat to enter.
        self._slow: list[tuple[float, int, dict[str, Any]]] = []
        self._failed: deque[dict[str, Any]] = deque(maxlen=self.capacity)

    def record(
        self, exemplar: dict[str, Any], *, failed: bool = False
    ) -> None:
        entry = dict(exemplar)
        spans = entry.get("spans") or []
        if len(spans) > SPAN_CAP:
            entry["spans"] = spans[:SPAN_CAP]
            entry["spans_truncated"] = len(spans) - SPAN_CAP
        with self._lock:
            if failed:
                self._failed.append(entry)
                return
            item = (
                float(entry.get("latency_seconds") or 0.0),
                next(self._seq),
                entry,
            )
            if len(self._slow) < self.capacity:
                heapq.heappush(self._slow, item)
            elif item[0] > self._slow[0][0]:
                heapq.heapreplace(self._slow, item)

    def snapshot(self) -> dict[str, Any]:
        """JSON-able dump: slowest-first ring plus most-recent failures.

        Entries are shallow-copied so a consumer mutating the dump (or a
        serializer annotating it) cannot corrupt the live rings.
        """
        with self._lock:
            slow = sorted(self._slow, key=lambda item: (-item[0], item[1]))
            failed = [dict(entry) for entry in self._failed]
        return {
            "capacity": self.capacity,
            "slowest": [dict(item[2]) for item in slow],
            "failed": failed,
        }
