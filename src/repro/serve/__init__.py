"""Optimizer-as-a-service: a long-lived daemon for heavy traffic.

The serving layer of the reproduction (ROADMAP item 3): one process
holds the warm state every request benefits from — a shared
:class:`~repro.core.search.transposition.TranspositionCache`, long-lived
:class:`~repro.core.search.parallel.WorkerPool`\\ s, and a request-level
result memo — behind a line-delimited JSON protocol with bounded
admission and per-tenant budgets.  ``repro serve`` is the CLI front end;
:class:`BackgroundServer` is the in-process harness tests and benches
drive.

Layout:

* :mod:`repro.serve.protocol` — wire format, budget/model/result codecs;
* :mod:`repro.serve.queue` — bounded admission + tenant policy;
* :mod:`repro.serve.memo` — fingerprint-keyed full-result memo;
* :mod:`repro.serve.exemplars` — bounded slow/failed request rings;
* :mod:`repro.serve.server` — the asyncio daemon itself;
* :mod:`repro.serve.client` — a synchronous client.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.exemplars import ExemplarStore
from repro.serve.memo import ResultMemo, memo_key
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    budget_from_dict,
    budget_to_dict,
    result_to_dict,
)
from repro.serve.queue import AdmissionError, JobQueue, TenantPolicy
from repro.serve.server import BackgroundServer, OptimizerServer, ServeConfig

__all__ = [
    "PROTOCOL_VERSION",
    "AdmissionError",
    "BackgroundServer",
    "ExemplarStore",
    "JobQueue",
    "OptimizerServer",
    "ProtocolError",
    "ResultMemo",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "TenantPolicy",
    "budget_from_dict",
    "budget_to_dict",
    "memo_key",
    "result_to_dict",
]
