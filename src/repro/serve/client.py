"""A blocking client for the serve protocol (tests, CI smoke, benches).

One socket, line-delimited JSON both ways.  Responses to a request are
matched by the echoed ``id``; progress ``event`` lines arriving before
the final response are handed to ``on_event`` (or collected) — the
client never drops them.  The client is deliberately synchronous:
operational tooling (smoke tests, load generators, shell pipelines)
wants straight-line code, and the daemon multiplexes fine over many
plain connections.

Usage::

    from repro.serve import ServeClient

    with ServeClient(("127.0.0.1", 7077)) as client:
        reply = client.optimize(workflow, algorithm="hs")
        print(reply["served_from"], reply["result"]["best_cost"])
"""

from __future__ import annotations

import itertools
import socket
from typing import Any, Callable

from repro.core.workflow import ETLWorkflow
from repro.exceptions import ReproError
from repro.io.json_io import workflow_to_dict
from repro.serve.protocol import decode, encode

__all__ = ["ServeClient", "ServeError"]


class ServeError(ReproError):
    """An error response from the daemon; carries the protocol ``code``."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


class ServeClient:
    """Synchronous connection to one optimizer daemon.

    ``address`` is a ``(host, port)`` tuple for TCP or a filesystem path
    for a UNIX socket — exactly what
    :attr:`~repro.serve.server.OptimizerServer.address` reports.
    """

    def __init__(
        self,
        address: tuple[str, int] | str,
        timeout: float | None = 60.0,
    ):
        if isinstance(address, str):
            self._socket = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._socket.settimeout(timeout)
            self._socket.connect(address)
        else:
            host, port = address
            self._socket = socket.create_connection(
                (host, port), timeout=timeout
            )
        self._reader = self._socket.makefile("rb")
        self._ids = itertools.count(1)

    # -- plumbing ---------------------------------------------------------------

    def request(
        self,
        message: dict[str, Any],
        on_event: Callable[[dict[str, Any]], None] | None = None,
    ) -> dict[str, Any]:
        """Send one request and block for its final response.

        ``event`` lines for this request are forwarded to ``on_event``;
        the final response is returned (or raised as :class:`ServeError`
        when the daemon answered ``ok: false``).
        """
        rid = message.get("id")
        if rid is None:
            rid = next(self._ids)
            message = {**message, "id": rid}
        self._socket.sendall(encode(message))
        while True:
            line = self._reader.readline()
            if not line:
                raise ServeError(
                    "connection-closed",
                    "daemon closed the connection before answering",
                )
            reply = decode(line)
            if reply.get("id") != rid:
                # Pipelined clients use one id space per connection, so a
                # foreign id here is a protocol bug worth surfacing.
                raise ServeError(
                    "protocol-desync",
                    f"expected a reply to {rid!r}, got {reply.get('id')!r}",
                )
            if "event" in reply:
                if on_event is not None:
                    on_event(reply)
                continue
            if not reply.get("ok", False):
                raise ServeError(
                    reply.get("code", "error"),
                    reply.get("error", "daemon reported an error"),
                )
            return reply

    # -- operations -------------------------------------------------------------

    def optimize(
        self,
        workflow: ETLWorkflow | dict[str, Any],
        algorithm: str = "heuristic",
        budget: dict[str, Any] | None = None,
        tenant: str = "default",
        model: str | None = None,
        stream: bool = False,
        on_event: Callable[[dict[str, Any]], None] | None = None,
    ) -> dict[str, Any]:
        """Optimize ``workflow`` on the daemon; returns the envelope.

        The envelope's ``result`` holds the serialized
        :class:`~repro.core.search.result.OptimizationResult`;
        ``served_from`` says whether the memo answered, and
        ``cache_hits`` counts the cache lookups that built the answer.
        """
        document = (
            workflow
            if isinstance(workflow, dict)
            else workflow_to_dict(workflow)
        )
        message: dict[str, Any] = {
            "op": "optimize",
            "workflow": document,
            "algorithm": algorithm,
            "tenant": tenant,
            "stream": stream or on_event is not None,
        }
        if budget is not None:
            message["budget"] = budget
        if model is not None:
            message["model"] = model
        return self.request(message, on_event=on_event)

    def status(self) -> dict[str, Any]:
        return self.request({"op": "status"})

    def stats(self) -> dict[str, Any]:
        return self.request({"op": "stats"})

    def metrics(self) -> str:
        """The daemon's Prometheus text exposition (``metrics`` op)."""
        return str(self.request({"op": "metrics"}).get("text", ""))

    def exemplars(self) -> dict[str, Any]:
        """The slow/failed request exemplar rings (``exemplars`` op)."""
        return self.request({"op": "exemplars"})

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def shutdown(self) -> dict[str, Any]:
        """Ask the daemon to stop once in-flight work drains."""
        return self.request({"op": "shutdown"})

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._socket.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
