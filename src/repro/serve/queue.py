"""Bounded job queue with admission control and per-tenant budget limits.

Admission is a *reject*, never a block: a daemon serving heavy traffic
must shed load at the door (the client sees ``queue-full`` immediately
and can back off) instead of accumulating unbounded work it will answer
late.  Two gates run at submit time, both O(1):

* **global depth** — at most ``capacity`` jobs queued (in-flight jobs
  have left the queue and do not count; the worker count bounds those);
* **per-tenant concurrency** — at most ``policy.max_inflight`` jobs per
  tenant queued-or-running, so one chatty tenant cannot starve the rest.

The tenant policy also *clamps* each request's :class:`SearchBudget`:
``max_states``/``max_seconds`` may only shrink below the tenant caps and
``jobs`` below the server-wide worker ceiling.  Clamping (rather than
rejecting) keeps near-duplicate requests memo-compatible: every request
a tenant sends under the same caps resolves to the same effective budget
and therefore the same memo key.

The queue is plain ``threading`` — the asyncio side submits without ever
blocking, the worker threads wait on a condition variable.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, replace
from typing import Any, Callable

from repro.core.search.budget import SearchBudget
from repro.exceptions import ReproError

__all__ = ["AdmissionError", "TenantPolicy", "Job", "JobQueue"]


class AdmissionError(ReproError):
    """A request the queue refused to admit; ``code`` names the gate."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


@dataclass(frozen=True)
class TenantPolicy:
    """Per-tenant admission and budget ceilings.

    Attributes:
        max_inflight: queued-or-running jobs one tenant may hold at once.
        max_states: ceiling on a request's ``max_states`` (``None`` = no
            ceiling); an unbounded request is clamped *to* the ceiling.
        max_seconds: likewise for the wall-clock budget.
    """

    max_inflight: int = 8
    max_states: int | None = None
    max_seconds: float | None = None

    def clamp(self, budget: SearchBudget, max_jobs: int) -> SearchBudget:
        """The effective budget for a request under this policy.

        Stopping criteria are the *minimum* of the request's and the
        tenant's; ``jobs`` is capped by the server's ``max_jobs`` (the
        daemon owns the worker pool — a client cannot fork more of the
        host than the operator allowed).  ``cache`` is stripped: the
        daemon always substitutes its shared cache.
        """
        max_states = _floor(budget.max_states, self.max_states)
        max_seconds = _floor(budget.max_seconds, self.max_seconds)
        jobs = min(budget.resolved_jobs(), max(1, max_jobs))
        return replace(
            budget,
            max_states=max_states,
            max_seconds=max_seconds,
            jobs=jobs,
            cache=None,
        )


def _floor(requested: int | float | None, cap: int | float | None):
    if requested is None:
        return cap
    if cap is None:
        return requested
    return min(requested, cap)


@dataclass
class Job:
    """One admitted optimize request, queued for a worker thread."""

    tenant: str
    payload: dict[str, Any]
    #: Called on the worker thread as ``run(job, pool)`` where ``pool``
    #: is the thread's long-lived WorkerPool; delivery back to the event
    #: loop is the callable's business (baked into the payload closures).
    run: Callable[..., None]
    enqueued_at: float = 0.0


class JobQueue:
    """Bounded FIFO with per-tenant inflight accounting (thread-safe)."""

    def __init__(self, capacity: int, policy: TenantPolicy):
        if capacity < 1:
            raise ValueError("JobQueue capacity must be at least 1")
        self.capacity = capacity
        self.policy = policy
        self.rejected_full = 0
        self.rejected_tenant = 0
        self.admitted = 0
        self._queue: deque[Job] = deque()
        self._inflight: dict[str, int] = {}
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._closed = False

    # -- producer side (asyncio thread) ---------------------------------------

    def submit(self, job: Job) -> None:
        """Admit ``job`` or raise :class:`AdmissionError` immediately."""
        with self._ready:
            if self._closed:
                raise AdmissionError(
                    "shutting-down", "daemon is shutting down"
                )
            if len(self._queue) >= self.capacity:
                self.rejected_full += 1
                raise AdmissionError(
                    "queue-full",
                    f"job queue is full ({self.capacity} queued); retry "
                    "with backoff",
                )
            holding = self._inflight.get(job.tenant, 0)
            if holding >= self.policy.max_inflight:
                self.rejected_tenant += 1
                raise AdmissionError(
                    "tenant-limit",
                    f"tenant {job.tenant!r} already has {holding} job(s) "
                    f"queued or running (limit {self.policy.max_inflight})",
                )
            job.enqueued_at = time.monotonic()
            self._inflight[job.tenant] = holding + 1
            self._queue.append(job)
            self.admitted += 1
            self._ready.notify()

    # -- consumer side (worker threads) ----------------------------------------

    def next_job(self, timeout: float | None = None) -> Job | None:
        """Block for the next job; ``None`` on timeout or queue closure."""
        with self._ready:
            while not self._queue:
                if self._closed:
                    return None
                if not self._ready.wait(timeout):
                    return None
            return self._queue.popleft()

    def task_done(self, job: Job) -> None:
        """Release the tenant's inflight slot once the job finished."""
        with self._lock:
            remaining = self._inflight.get(job.tenant, 0) - 1
            if remaining > 0:
                self._inflight[job.tenant] = remaining
            else:
                self._inflight.pop(job.tenant, None)

    def close(self) -> None:
        """Refuse new work and wake every waiting worker."""
        with self._ready:
            self._closed = True
            self._ready.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    # -- introspection ----------------------------------------------------------

    def depth(self) -> int:
        with self._lock:
            return len(self._queue)

    def inflight(self) -> dict[str, int]:
        with self._lock:
            return dict(self._inflight)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "depth": len(self._queue),
                "capacity": self.capacity,
                "inflight": dict(self._inflight),
                "admitted": self.admitted,
                "rejected_full": self.rejected_full,
                "rejected_tenant": self.rejected_tenant,
            }
