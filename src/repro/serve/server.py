"""The optimizer-as-a-service daemon (stdlib asyncio, no dependencies).

One long-lived process answers optimize requests for many tenants over a
line-delimited JSON protocol (:mod:`repro.serve.protocol`) on TCP or a
UNIX socket.  The architecture is two planes joined by a bounded queue:

* the **asyncio plane** (one thread) accepts connections, parses and
  admits requests (:mod:`repro.serve.queue`), probes the request-level
  result memo (:mod:`repro.serve.memo`), and streams responses —
  it never runs a search, so admission and memo hits stay fast no
  matter how busy the workers are;
* the **worker plane** (``workers`` threads) pulls admitted jobs and
  runs them through :func:`~repro.core.search.parallel.run_search`, each
  thread owning one long-lived
  :class:`~repro.core.search.parallel.WorkerPool` (processes fork once,
  not per request) and all threads sharing one
  :class:`~repro.core.search.transposition.TranspositionCache` — Liu's
  shared-cache recipe: every request warms the cache for every later
  near-duplicate.

Determinism guarantee: a served result is byte-identical (cost, plan,
lineage) to a direct :func:`repro.optimize` call with the same effective
budget — the daemon only ever substitutes its shared cache, and cached
values replay exactly what the same deterministic computation would have
produced.

Progress streaming rides the obs layer: each request runs under a
private :class:`~repro.obs.Recorder` whose ``on_span`` hook forwards
finished ``search.*`` spans to the client as ``event`` lines, and whose
full buffer is absorbed into the daemon's recorder for ``stats`` and
``--telemetry``.

Production observability is three planes on top of that substrate:

* **metrics** — per-request latency, queue wait, search time, and memo
  lookup time feed daemon-level histograms; the ``metrics`` protocol op
  and the optional ``--metrics-port`` plain-HTTP ``GET /metrics``
  endpoint expose everything in Prometheus text format
  (:mod:`repro.obs.expose`), and ``repro top`` renders a live summary;
* **traces** — every request gets a ``trace_id`` (returned in its
  envelope) stamped onto all spans the request records, including
  worker-process buffers shipped back through the pool, so one
  request's tree is reassemblable from the daemon's mixed stream
  (``repro report --trace ID``);
* **exemplars** — a bounded ring of the slowest and most recently
  failed requests keeps full span trees for post-hoc p99 diagnosis
  (:mod:`repro.serve.exemplars`, the ``exemplars`` op).
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable

from repro.core.search.budget import SearchBudget
from repro.core.search.parallel import ALGORITHMS, WorkerPool, run_search
from repro.core.search.transposition import TranspositionCache
from repro.core.signature import workflow_fingerprint
from repro.obs import (
    CONTENT_TYPE,
    Histogram,
    Recorder,
    get_recorder,
    new_trace_id,
    render_prometheus,
    use_recorder,
)
from repro.serve.exemplars import DEFAULT_EXEMPLARS, ExemplarStore
from repro.serve.memo import DEFAULT_CAPACITY, ResultMemo, memo_key
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    budget_from_dict,
    budget_to_dict,
    decode,
    encode,
    model_key,
    resolve_model,
    result_to_dict,
    workflow_from_request,
)
from repro.serve.queue import AdmissionError, Job, JobQueue, TenantPolicy

__all__ = ["ServeConfig", "OptimizerServer", "BackgroundServer"]


@dataclass(frozen=True)
class ServeConfig:
    """Everything the daemon's operator decides.

    Attributes:
        host / port: TCP endpoint; ``port=0`` binds an ephemeral port
            (the bound address is reported by :attr:`OptimizerServer.address`).
        unix_socket: path for a UNIX-domain socket; overrides TCP.
        workers: optimizer worker threads (each owns one process pool).
        max_jobs: per-search worker-process ceiling — requests asking for
            more are clamped, so a client can never fork more of the host
            than the operator allowed.
        queue_size: bounded job-queue depth (admission control).
        tenant: per-tenant inflight/budget ceilings, uniform across
            tenants (a config file of per-tenant overrides can layer on
            later without touching the protocol).
        cache: transposition-cache spec, as accepted by
            :meth:`TranspositionCache.resolve` — ``None`` keeps the warm
            cache in-process only, a path adds the on-disk layer.
        memo_capacity: LRU bound on fully-memoized results.
        metrics_port: when set, also serve plain-HTTP ``GET /metrics``
            (Prometheus text exposition) on this TCP port; ``0`` binds
            an ephemeral port (see :attr:`OptimizerServer.metrics_address`).
            ``None`` (default) disables the endpoint — the ``metrics``
            protocol op works either way.
        exemplar_capacity: ring size for the slowest / most recently
            failed request exemplars kept for post-hoc diagnosis.
    """

    host: str = "127.0.0.1"
    port: int = 0
    unix_socket: str | None = None
    workers: int = 1
    max_jobs: int = 1
    queue_size: int = 64
    tenant: TenantPolicy = field(default_factory=TenantPolicy)
    cache: Any = None
    memo_capacity: int = DEFAULT_CAPACITY
    metrics_port: int | None = None
    exemplar_capacity: int = DEFAULT_EXEMPLARS


class _Connection:
    """Per-connection outbound state: one writer task drains ``out``."""

    def __init__(self) -> None:
        self.out: asyncio.Queue[dict[str, Any] | None] = asyncio.Queue()
        self.outstanding = 0
        self.drained = asyncio.Event()
        self.drained.set()

    def track(self) -> None:
        self.outstanding += 1
        self.drained.clear()

    def settle(self) -> None:
        self.outstanding -= 1
        if self.outstanding <= 0:
            self.drained.set()


class OptimizerServer:
    """The daemon: shared warm cache, result memo, bounded admission."""

    def __init__(self, config: ServeConfig | None = None):
        self.config = config if config is not None else ServeConfig()
        self.memo = ResultMemo(self.config.memo_capacity)
        self.queue = JobQueue(self.config.queue_size, self.config.tenant)
        #: The daemon's own telemetry (stats source); absorbed into any
        #: outer --telemetry recorder at shutdown.
        self.recorder = Recorder()
        self.exemplars = ExemplarStore(self.config.exemplar_capacity)
        self.cache: TranspositionCache | None = None
        self.address: tuple[str, int] | str | None = None
        self.metrics_address: tuple[str, int] | None = None
        self.started_at = time.monotonic()
        self._owned_cache = False
        self._server: asyncio.base_events.Server | None = None
        self._metrics_server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._threads: list[threading.Thread] = []
        self._tenant_requests: dict[str, int] = {}
        self._tenant_lock = threading.Lock()
        self._writers: set[asyncio.StreamWriter] = set()

    # -- lifecycle --------------------------------------------------------------

    async def start(self) -> None:
        """Bind the endpoint and start the worker threads."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self.started_at = time.monotonic()
        self.cache, self._owned_cache = TranspositionCache.resolve(
            self.config.cache
        )
        for index in range(max(1, self.config.workers)):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        if self.config.unix_socket:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.config.unix_socket
            )
            self.address = self.config.unix_socket
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, self.config.host, self.config.port
            )
            sock = self._server.sockets[0]
            self.address = sock.getsockname()[:2]
        if self.config.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._handle_metrics_http,
                self.config.host,
                self.config.metrics_port,
            )
            sock = self._metrics_server.sockets[0]
            self.metrics_address = sock.getsockname()[:2]

    async def serve_until_shutdown(self) -> None:
        """Serve until a ``shutdown`` request (or :meth:`request_stop`)."""
        if self._stop_event is None:
            await self.start()
        assert self._stop_event is not None
        await self._stop_event.wait()
        await self._shutdown()

    def request_stop(self) -> None:
        """Threadsafe stop signal (used by :class:`BackgroundServer`)."""
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass  # loop already closed: a shutdown op beat us to it

    async def _shutdown(self) -> None:
        """Stop accepting, drain in-flight work, release every resource."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
        self.queue.close()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._join_workers)
        # Close lingering client connections so their handler tasks end
        # on EOF before the loop tears down (a cancelled handler would
        # log a spurious CancelledError from asyncio.streams).
        for writer in list(self._writers):
            try:
                writer.close()
            except Exception:
                pass
        deadline = time.monotonic() + 5.0
        while self._writers and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        if self.cache is not None and self._owned_cache:
            self.cache.flush()
        if self.config.unix_socket:
            try:
                os.unlink(self.config.unix_socket)
            except OSError:
                pass
        outer = get_recorder()
        if outer.active:
            outer.absorb(self.recorder.events())

    def _join_workers(self) -> None:
        for thread in self._threads:
            thread.join(timeout=60.0)
        self._threads.clear()

    def run(self) -> None:
        """Blocking entry point for ``repro serve``."""

        async def main() -> None:
            await self.start()
            await self.serve_until_shutdown()

        asyncio.run(main())

    # -- asyncio plane ----------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection()
        self._writers.add(writer)
        drain_task = asyncio.get_running_loop().create_task(
            self._drain(conn, writer)
        )
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                self._dispatch(line, conn)
            await conn.drained.wait()
        finally:
            # Loop teardown cancels this task while it waits on readline;
            # the writer task is told to finish and its own cancellation
            # (same teardown) is not an error worth re-raising.
            self._writers.discard(writer)
            conn.out.put_nowait(None)
            try:
                await drain_task
            except asyncio.CancelledError:
                pass

    async def _drain(
        self, conn: _Connection, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                message = await conn.out.get()
                if message is None:
                    break
                writer.write(encode(message))
                await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass  # the client went away; workers still settle the counter
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError, OSError):
                pass

    def _dispatch(self, line: bytes, conn: _Connection) -> None:
        try:
            message = decode(line)
        except ProtocolError as exc:
            self._count_request("invalid")
            conn.out.put_nowait(
                {"ok": False, "code": "bad-request", "error": str(exc)}
            )
            return
        op = message.get("op")
        rid = message.get("id")
        if op == "optimize":
            self._handle_optimize(message, conn)
        elif op == "status":
            self._count_request("status")
            conn.out.put_nowait({"id": rid, "ok": True, **self.status()})
        elif op == "stats":
            self._count_request("stats")
            conn.out.put_nowait({"id": rid, "ok": True, **self.stats()})
        elif op == "metrics":
            self._count_request("metrics")
            conn.out.put_nowait(
                {
                    "id": rid,
                    "ok": True,
                    "content_type": CONTENT_TYPE,
                    "text": self.metrics_text(),
                }
            )
        elif op == "exemplars":
            self._count_request("exemplars")
            conn.out.put_nowait(
                {"id": rid, "ok": True, **self.exemplars.snapshot()}
            )
        elif op == "ping":
            self._count_request("ping")
            conn.out.put_nowait({"id": rid, "ok": True, "pong": True})
        elif op == "shutdown":
            self._count_request("shutdown")
            conn.out.put_nowait({"id": rid, "ok": True, "stopping": True})
            if self._stop_event is not None:
                self._stop_event.set()
        else:
            self._count_request("invalid")
            conn.out.put_nowait(
                {
                    "id": rid,
                    "ok": False,
                    "code": "bad-request",
                    "error": f"unknown op {op!r}",
                }
            )

    def _handle_optimize(
        self, message: dict[str, Any], conn: _Connection
    ) -> None:
        rid = message.get("id")
        accepted_at = time.monotonic()
        self._count_request("optimize")
        try:
            workflow = workflow_from_request(message.get("workflow"))
            requested = budget_from_dict(message.get("budget"))
            algorithm = str(message.get("algorithm", "heuristic")).lower()
            if algorithm not in ALGORITHMS:
                raise ProtocolError(
                    f"unknown algorithm {algorithm!r}; choose one of "
                    f"{sorted(set(ALGORITHMS))}"
                )
            model_name = message.get("model")
            resolve_model(model_name)  # validate eagerly, fail at the door
            tenant = str(message.get("tenant", "default"))
            stream = bool(message.get("stream", False))
        except ProtocolError as exc:
            conn.out.put_nowait(
                {
                    "id": rid,
                    "ok": False,
                    "code": "bad-request",
                    "error": str(exc),
                }
            )
            return
        with self._tenant_lock:
            self._tenant_requests[tenant] = (
                self._tenant_requests.get(tenant, 0) + 1
            )
        effective = self.queue.policy.clamp(requested, self.config.max_jobs)
        fingerprint = workflow_fingerprint(workflow)
        canonical = ALGORITHMS[algorithm].__name__.removesuffix("_search")
        key = memo_key(
            fingerprint, model_key(model_name), canonical, effective
        )
        trace_id = new_trace_id()
        lookup_started = time.monotonic()
        cached = self.memo.get(key)
        self.recorder.histogram("serve.memo_lookup_seconds").observe(
            time.monotonic() - lookup_started
        )
        if cached is not None:
            self.recorder.counter("serve.memo", outcome="hit").add()
            if stream:
                conn.out.put_nowait(
                    {"id": rid, "event": "memo-hit", "fingerprint": fingerprint}
                )
            latency = time.monotonic() - accepted_at
            self.recorder.histogram("serve.request_latency_seconds").observe(
                latency
            )
            conn.out.put_nowait(
                self._envelope(
                    rid,
                    cached,
                    served_from="memo",
                    # The whole request was one cache lookup: the memo hit
                    # itself plus whatever transposition hits the original
                    # run reported.
                    cache_hits=cached["cache_hits"] + 1,
                    fingerprint=fingerprint,
                    effective=effective,
                    latency=latency,
                    trace_id=trace_id,
                )
            )
            return
        self.recorder.counter("serve.memo", outcome="miss").add()
        conn.track()
        loop = self._loop
        assert loop is not None

        def deliver(envelope: dict[str, Any]) -> None:
            loop.call_soon_threadsafe(self._deliver_cb, conn, envelope)

        def emit(event: dict[str, Any]) -> None:
            if stream:
                loop.call_soon_threadsafe(
                    conn.out.put_nowait, {"id": rid, **event}
                )

        job = Job(
            tenant=tenant,
            payload={
                "id": rid,
                "workflow": workflow,
                "budget": effective,
                "algorithm": algorithm,
                "model": model_name,
                "memo_key": key,
                "fingerprint": fingerprint,
                "stream": stream,
                "accepted_at": accepted_at,
                "trace": trace_id,
                "tenant": tenant,
                "deliver": deliver,
                "emit": emit,
            },
            run=self._execute,
        )
        try:
            self.queue.submit(job)
        except AdmissionError as exc:
            conn.settle()
            self.recorder.counter("serve.rejected", code=exc.code).add()
            conn.out.put_nowait(
                {"id": rid, "ok": False, "code": exc.code, "error": str(exc)}
            )
            return
        if stream:
            conn.out.put_nowait(
                {
                    "id": rid,
                    "event": "queued",
                    "depth": self.queue.depth(),
                    "fingerprint": fingerprint,
                }
            )

    def _deliver_cb(self, conn: _Connection, envelope: dict[str, Any]) -> None:
        conn.out.put_nowait(envelope)
        conn.settle()

    def _envelope(
        self,
        rid: Any,
        payload: dict[str, Any],
        served_from: str,
        cache_hits: int,
        fingerprint: str,
        effective: SearchBudget,
        latency: float,
        trace_id: str | None = None,
    ) -> dict[str, Any]:
        return {
            "id": rid,
            "ok": True,
            "served_from": served_from,
            "cache_hits": cache_hits,
            "fingerprint": fingerprint,
            "budget": budget_to_dict(effective),
            "latency_seconds": latency,
            "trace_id": trace_id,
            "result": payload,
        }

    # -- worker plane -----------------------------------------------------------

    def _worker_loop(self) -> None:
        pool = WorkerPool(self.config.max_jobs)
        try:
            while True:
                job = self.queue.next_job(timeout=0.2)
                if job is None:
                    if self.queue.closed:  # drained and closed: exit
                        break
                    continue
                try:
                    job.run(job, pool)
                finally:
                    self.queue.task_done(job)
        finally:
            pool.close()

    def _execute(self, job: Job, pool: WorkerPool) -> None:
        payload = job.payload
        emit: Callable[[dict[str, Any]], None] = payload["emit"]
        deliver: Callable[[dict[str, Any]], None] = payload["deliver"]
        trace_id: str = payload["trace"]
        queued_seconds = time.monotonic() - job.enqueued_at
        emit({"event": "started", "queued_seconds": queued_seconds})
        local = Recorder()
        if payload["stream"]:

            def forward(span_event: dict[str, Any]) -> None:
                if span_event["name"].startswith("search."):
                    emit(
                        {
                            "event": "progress",
                            "span": span_event["name"],
                            "seconds": span_event["seconds"],
                            "tags": span_event.get("tags", {}),
                        }
                    )

            local.on_span = forward
        budget: SearchBudget = payload["budget"]
        search_started = time.monotonic()
        try:
            with use_recorder(local), local.trace(trace_id):
                with local.span(
                    "serve.request",
                    algorithm=payload["algorithm"],
                    tenant=job.tenant,
                ):
                    local.record_span("serve.queue_wait", queued_seconds)
                    with local.span("serve.search"):
                        result = run_search(
                            payload["algorithm"],
                            payload["workflow"],
                            model=resolve_model(payload["model"]),
                            budget=replace(budget, cache=self.cache),
                            pool=pool if budget.resolved_jobs() > 1 else None,
                        )
        except Exception as exc:  # a search bug must answer, not hang
            latency = time.monotonic() - payload["accepted_at"]
            self.recorder.counter("serve.errors").add()
            events = local.events()
            self.recorder.absorb(events)
            self._observe_request(queued_seconds, None, latency)
            self.exemplars.record(
                self._exemplar(
                    payload,
                    job,
                    events,
                    latency=latency,
                    queued_seconds=queued_seconds,
                    ok=False,
                    code="search-error",
                    error=f"{type(exc).__name__}: {exc}",
                ),
                failed=True,
            )
            deliver(
                {
                    "id": payload["id"],
                    "ok": False,
                    "code": "search-error",
                    "error": f"{type(exc).__name__}: {exc}",
                    "trace_id": trace_id,
                }
            )
            return
        search_seconds = time.monotonic() - search_started
        serialized = result_to_dict(result)
        self.memo.put(payload["memo_key"], serialized)
        latency = time.monotonic() - payload["accepted_at"]
        events = local.events()
        self.recorder.absorb(events)
        self._observe_request(queued_seconds, search_seconds, latency)
        self.exemplars.record(
            self._exemplar(
                payload,
                job,
                events,
                latency=latency,
                queued_seconds=queued_seconds,
                ok=True,
            )
        )
        deliver(
            self._envelope(
                payload["id"],
                serialized,
                served_from="search",
                cache_hits=serialized["cache_hits"],
                fingerprint=payload["fingerprint"],
                effective=budget,
                latency=latency,
                trace_id=trace_id,
            )
        )

    def _observe_request(
        self,
        queued_seconds: float,
        search_seconds: float | None,
        latency: float,
    ) -> None:
        self.recorder.histogram("serve.queue_wait_seconds").observe(
            queued_seconds
        )
        if search_seconds is not None:
            self.recorder.histogram("serve.search_seconds").observe(
                search_seconds
            )
        self.recorder.histogram("serve.request_latency_seconds").observe(
            latency
        )

    def _exemplar(
        self,
        payload: dict[str, Any],
        job: Job,
        events: list[dict[str, Any]],
        latency: float,
        queued_seconds: float,
        ok: bool,
        code: str | None = None,
        error: str | None = None,
    ) -> dict[str, Any]:
        exemplar = {
            "trace_id": payload["trace"],
            "tenant": job.tenant,
            "algorithm": payload["algorithm"],
            "fingerprint": payload["fingerprint"],
            "budget": budget_to_dict(payload["budget"]),
            "served_from": "search",
            "ok": ok,
            "latency_seconds": latency,
            "queued_seconds": queued_seconds,
            "spans": [e for e in events if e.get("type") == "span"],
        }
        if code is not None:
            exemplar["code"] = code
        if error is not None:
            exemplar["error"] = error
        return exemplar

    # -- introspection ----------------------------------------------------------

    def _count_request(self, op: str) -> None:
        self.recorder.counter("serve.requests", op=op).add()

    def status(self) -> dict[str, Any]:
        return {
            "protocol_version": PROTOCOL_VERSION,
            "pid": os.getpid(),
            "uptime_seconds": time.monotonic() - self.started_at,
            "workers": len(self._threads),
            "max_jobs": self.config.max_jobs,
            "queue": self.queue.stats(),
            "metrics_address": (
                list(self.metrics_address) if self.metrics_address else None
            ),
        }

    def stats(self) -> dict[str, Any]:
        assert self.cache is not None
        transposition_total = self.cache.hits + self.cache.misses
        with self._tenant_lock:
            tenants = dict(self._tenant_requests)
        counters = {}
        histograms = {}
        for event in self.recorder.events():
            tags = event.get("tags", {})
            suffix = ",".join(f"{k}={v}" for k, v in sorted(tags.items()))
            name = event.get("name", "") + (f"[{suffix}]" if suffix else "")
            if event.get("type") == "counter":
                counters[name] = event["value"]
            elif event.get("type") == "histogram":
                merged = Histogram(event["name"], {})
                merged.merge_event(event)
                histograms[name] = merged.summary()
        return {
            "memo": self.memo.stats(),
            "transposition": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "merge_conflicts": self.cache.merge_conflicts,
                "hit_rate": (
                    self.cache.hits / transposition_total
                    if transposition_total
                    else 0.0
                ),
            },
            "queue": self.queue.stats(),
            "tenants": tenants,
            "counters": counters,
            "histograms": histograms,
        }

    def metrics_text(self) -> str:
        """The full Prometheus exposition: recorder instruments plus
        synthesized operational gauges (queue, memo, cache, uptime)."""
        assert self.cache is not None

        def gauge(name: str, value: Any, **tags: Any) -> dict[str, Any]:
            return {
                "type": "gauge",
                "name": name,
                "value": value,
                "max": None,
                "tags": tags,
            }

        queue_stats = self.queue.stats()
        memo_stats = self.memo.stats()
        events = self.recorder.events()
        events.append(
            gauge(
                "serve.uptime_seconds",
                time.monotonic() - self.started_at,
            )
        )
        events.append(gauge("serve.queue_depth", queue_stats["depth"]))
        events.append(gauge("serve.queue_capacity", queue_stats["capacity"]))
        for tenant, inflight in sorted(queue_stats["inflight"].items()):
            events.append(
                gauge("serve.tenant_inflight", inflight, tenant=tenant)
            )
        for key in ("entries", "capacity", "hits", "misses", "hit_rate"):
            events.append(gauge(f"serve.memo_{key}", memo_stats[key]))
        transposition_total = self.cache.hits + self.cache.misses
        events.append(gauge("serve.transposition_hits", self.cache.hits))
        events.append(gauge("serve.transposition_misses", self.cache.misses))
        events.append(
            gauge(
                "serve.transposition_hit_rate",
                (
                    self.cache.hits / transposition_total
                    if transposition_total
                    else 0.0
                ),
            )
        )
        return render_prometheus(events)

    async def _handle_metrics_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Minimal plain-HTTP responder for ``GET /metrics`` scrapes.

        One request per connection (``Connection: close``); anything but
        a GET for ``/metrics`` gets a 404.  This is a scrape endpoint,
        not a web server — no keep-alive, no chunking, no TLS.
        """
        try:
            request_line = await reader.readline()
            while True:  # drain request headers until the blank line
                header = await reader.readline()
                if not header or header in (b"\r\n", b"\n"):
                    break
            parts = request_line.decode("latin-1", "replace").split()
            path = parts[1].split("?")[0] if len(parts) > 1 else ""
            if len(parts) > 1 and parts[0] == "GET" and path == "/metrics":
                body = self.metrics_text().encode("utf-8")
                status_line = "HTTP/1.1 200 OK"
                content_type = CONTENT_TYPE
            else:
                body = b"not found\n"
                status_line = "HTTP/1.1 404 Not Found"
                content_type = "text/plain; charset=utf-8"
            head = (
                f"{status_line}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n"
                "\r\n"
            )
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError, OSError):
                pass


class BackgroundServer:
    """Run an :class:`OptimizerServer` on a background thread.

    The in-process harness tests and benchmarks drive: ``with
    BackgroundServer(config) as server: client = server.client(); ...``.
    The context manager guarantees the daemon is bound before the body
    runs and fully drained before it exits.
    """

    def __init__(self, config: ServeConfig | None = None):
        self.server = OptimizerServer(config)
        self._ready = threading.Event()
        self._failure: BaseException | None = None
        self._thread: threading.Thread | None = None

    def __enter__(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._main, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("serve daemon failed to start within 30s")
        if self._failure is not None:
            raise RuntimeError(
                f"serve daemon failed to start: {self._failure}"
            ) from self._failure
        return self

    def _main(self) -> None:
        async def main() -> None:
            try:
                await self.server.start()
            except BaseException as exc:
                self._failure = exc
                self._ready.set()
                raise
            self._ready.set()
            await self.server.serve_until_shutdown()

        try:
            asyncio.run(main())
        except BaseException as exc:  # surfaced on stop()
            if self._failure is None:
                self._failure = exc

    @property
    def address(self) -> tuple[str, int] | str:
        address = self.server.address
        assert address is not None
        return address

    def client(self):
        from repro.serve.client import ServeClient

        return ServeClient(self.address)

    def stop(self) -> None:
        self.server.request_stop()
        if self._thread is not None:
            self._thread.join(timeout=60.0)
            self._thread = None

    def __exit__(self, *exc_info) -> None:
        self.stop()
