"""Request-level result memo: a repeat optimize is a dictionary lookup.

Heavy multi-tenant traffic is dominated by near-duplicate requests — the
same workflow re-optimized on every pipeline deploy, dashboard refresh,
or retry.  The transposition cache already makes a *warm* search cheap;
this memo removes the search entirely: the full serialized
:class:`~repro.core.search.result.OptimizationResult` is keyed on
everything the answer depends on —

    workflow fingerprint × cost model × algorithm × budget knobs

— and a repeat request replays the stored payload.  ``jobs`` is
deliberately **excluded** from the key: the engine's jobs=N runs are
byte-identical to serial, so a result computed at any worker count
answers a request at any other.  Stopping and pruning knobs
(``max_states``/``max_seconds``/``beam_width``/``prune_dominated``/
``bound``) are all **included**: they change which state the search
returns, so each combination memoizes separately.

The memo is bounded (LRU) and thread-safe — the daemon's worker threads
populate it while the asyncio thread probes it on admission.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

from repro.core.search.budget import SearchBudget

__all__ = ["ResultMemo", "memo_key"]

#: Default bound on memoized results; one entry holds a full serialized
#: result (plan + lineage), so the cap is a memory budget, not a hint.
DEFAULT_CAPACITY = 1024


def memo_key(
    fingerprint: str,
    model: str,
    algorithm: str,
    budget: SearchBudget,
) -> str:
    """The canonical memo key for one optimize request.

    ``fingerprint`` is :func:`~repro.core.signature.workflow_fingerprint`
    of the submitted workflow — a content hash, so two tenants submitting
    the same workflow share one entry (results carry no tenant data).
    """
    return "|".join(
        (
            fingerprint,
            model,
            algorithm.lower(),
            f"states={budget.max_states}",
            f"seconds={budget.max_seconds}",
            f"beam={budget.beam_width}",
            f"dominated={budget.prune_dominated}",
            f"bound={budget.bound}",
        )
    )


class ResultMemo:
    """A bounded, thread-safe LRU of serialized optimization results."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("ResultMemo capacity must be at least 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, dict[str, Any]]" = OrderedDict()

    def get(self, key: str) -> dict[str, Any] | None:
        """The stored payload for ``key``, bumping it most-recently-used.

        Returns the stored dict itself; callers must treat it as frozen
        (the server composes response envelopes *around* it, never into
        it).
        """
        with self._lock:
            payload = self._entries.get(key)
            if payload is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return payload

    def put(self, key: str, payload: dict[str, Any]) -> None:
        """Store ``payload`` under ``key``, evicting least-recently-used.

        First write wins on a racing double-compute: both runs produced
        the same deterministic value, so keeping the incumbent avoids a
        pointless LRU bump for the loser.
        """
        with self._lock:
            if key in self._entries:
                return
            self._entries[key] = payload
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": (self.hits / total) if total else 0.0,
            }
