"""Rendering workflows: Graphviz DOT and plain-text outlines.

``to_dot`` produces a Graphviz document matching the paper's figures —
recordsets as cylinders-ish boxes, activities as ellipses tagged with
their execution priority and description, edges following the data flow.
``to_text`` prints a compact indented outline (handy in terminals and
doctests).
"""

from __future__ import annotations

from repro.core.activity import Activity, CompositeActivity
from repro.core.recordset import RecordSet
from repro.core.workflow import ETLWorkflow, Node

__all__ = ["to_dot", "to_text"]


def _dot_escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _dot_label(*lines: str) -> str:
    """A multi-line DOT label: lines escaped, joined with DOT's ``\\n``."""
    return "\\n".join(_dot_escape(line) for line in lines)


def to_dot(workflow: ETLWorkflow, title: str = "ETL workflow") -> str:
    """A Graphviz DOT rendering of the workflow graph."""
    lines = [
        "digraph etl {",
        "  rankdir=LR;",
        f"  label=\"{_dot_escape(title)}\";",
        "  node [fontsize=10];",
    ]
    for node in workflow.topological_order():
        node_id = _dot_escape(node.id)
        if isinstance(node, RecordSet):
            shape = "box3d" if node.is_source or node.is_target else "box"
            label = _dot_label(f"{node.id}: {node.name}", str(node.schema))
            lines.append(f'  "{node_id}" [shape={shape}, label="{label}"];')
        else:
            label = _dot_escape(f"{node.id}: {node.name}")
            style = ", style=dashed" if isinstance(node, CompositeActivity) else ""
            lines.append(f'  "{node_id}" [shape=ellipse, label="{label}"{style}];')
    for provider, consumer in workflow.graph.edges:
        port = workflow.edge_port(provider, consumer)
        attrs = f' [label="{port}"]' if _needs_port_label(consumer) else ""
        lines.append(
            f'  "{_dot_escape(provider.id)}" -> "{_dot_escape(consumer.id)}"{attrs};'
        )
    lines.append("}")
    return "\n".join(lines)


def _needs_port_label(node: Node) -> bool:
    return (
        isinstance(node, Activity)
        and node.is_binary
        and not node.template.commutative
    )


def to_text(workflow: ETLWorkflow) -> str:
    """An indented, topologically ordered outline of the workflow."""
    derived = workflow.propagate_schemas()
    lines: list[str] = []
    for node in workflow.topological_order():
        if isinstance(node, RecordSet):
            role = node.kind.value
            lines.append(
                f"[{node.id}] {node.name} ({role}) schema={derived[node].output}"
            )
        else:
            providers = ",".join(p.id for p in workflow.providers(node))
            lines.append(
                f"[{node.id}] {node.name} <- [{providers}] "
                f"out={derived[node].output}"
            )
    return "\n".join(lines)
