"""JSON (de)serialization of ETL workflows.

A workflow serializes to a self-contained document: recordsets with their
schemas/kinds/cardinalities, activities with template name + parameters +
selectivity, and the port-annotated edge list.  Deserialization resolves
templates against a :class:`~repro.templates.TemplateLibrary` (the default
library unless one is supplied), so custom templates round-trip as long
as the reader registers them too.

Merged (composite) activities serialize as their component list; the
reader re-merges them, so MER packages survive a round-trip.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.activity import Activity, CompositeActivity
from repro.core.recordset import RecordSet, RecordSetKind
from repro.core.schema import Schema
from repro.core.workflow import ETLWorkflow, Node
from repro.exceptions import ReproError
from repro.templates.library import TemplateLibrary, default_library

__all__ = ["workflow_to_dict", "workflow_from_dict", "dumps", "loads", "save", "load"]

FORMAT_VERSION = 1


def _params_to_json(params: dict[str, Any]) -> dict[str, Any]:
    """Tuples become lists in JSON; record which keys to restore."""
    encoded: dict[str, Any] = {}
    tuple_keys: list[str] = []
    for key, value in params.items():
        if isinstance(value, tuple):
            encoded[key] = list(value)
            tuple_keys.append(key)
        else:
            encoded[key] = value
    if tuple_keys:
        encoded["__tuple_keys__"] = tuple_keys
    return encoded


def _params_from_json(encoded: dict[str, Any]) -> dict[str, Any]:
    params = dict(encoded)
    tuple_keys = params.pop("__tuple_keys__", [])
    for key in tuple_keys:
        params[key] = tuple(params[key])
    return params


def _activity_to_dict(activity: Activity) -> dict[str, Any]:
    if isinstance(activity, CompositeActivity):
        return {
            "type": "composite",
            "components": [_activity_to_dict(c) for c in activity.components],
        }
    return {
        "type": "activity",
        "id": activity.id,
        "template": activity.template.name,
        "params": _params_to_json(activity.params),
        "selectivity": activity.selectivity,
        "name": activity.name,
    }


def _activity_from_dict(
    data: dict[str, Any], library: TemplateLibrary
) -> Activity:
    if data["type"] == "composite":
        components = tuple(
            _activity_from_dict(c, library) for c in data["components"]
        )
        return CompositeActivity(components)
    return Activity(
        data["id"],
        library.get(data["template"]),
        _params_from_json(data["params"]),
        selectivity=data.get("selectivity", 1.0),
        name=data.get("name"),
    )


def workflow_to_dict(workflow: ETLWorkflow) -> dict[str, Any]:
    """A JSON-ready representation of the workflow."""
    nodes: list[dict[str, Any]] = []
    for node in workflow.topological_order():
        if isinstance(node, RecordSet):
            nodes.append(
                {
                    "type": "recordset",
                    "id": node.id,
                    "name": node.name,
                    "schema": list(node.schema),
                    "kind": node.kind.value,
                    "cardinality": node.cardinality,
                }
            )
        else:
            nodes.append(_activity_to_dict(node))
    edges = [
        {
            "provider": provider.id,
            "consumer": consumer.id,
            "port": workflow.edge_port(provider, consumer),
        }
        for provider, consumer in workflow.graph.edges
    ]
    edges.sort(key=lambda e: (e["consumer"], e["port"], e["provider"]))
    return {"format_version": FORMAT_VERSION, "nodes": nodes, "edges": edges}


def workflow_from_dict(
    data: dict[str, Any], library: TemplateLibrary | None = None
) -> ETLWorkflow:
    """Rebuild a workflow from :func:`workflow_to_dict` output."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ReproError(
            f"unsupported workflow format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    library = library if library is not None else default_library()
    workflow = ETLWorkflow()
    by_id: dict[str, Node] = {}
    for node_data in data["nodes"]:
        node: Node
        if node_data["type"] == "recordset":
            node = RecordSet(
                node_data["id"],
                node_data["name"],
                Schema(node_data["schema"]),
                RecordSetKind(node_data["kind"]),
                node_data.get("cardinality", 0.0),
            )
        else:
            node = _activity_from_dict(node_data, library)
        workflow.add_node(node)
        by_id[node.id] = node
    for edge in data["edges"]:
        workflow.add_edge(
            by_id[edge["provider"]], by_id[edge["consumer"]], port=edge["port"]
        )
    workflow.validate()
    workflow.propagate_schemas()
    return workflow


def dumps(workflow: ETLWorkflow, indent: int | None = 2) -> str:
    """Serialize a workflow to a JSON string."""
    return json.dumps(workflow_to_dict(workflow), indent=indent)


def loads(text: str, library: TemplateLibrary | None = None) -> ETLWorkflow:
    """Deserialize a workflow from a JSON string."""
    return workflow_from_dict(json.loads(text), library)


def save(workflow: ETLWorkflow, path: str) -> None:
    """Write a workflow to a JSON file (atomically)."""
    from repro.io.atomic import atomic_write_text

    atomic_write_text(path, dumps(workflow))


def load(path: str, library: TemplateLibrary | None = None) -> ETLWorkflow:
    """Read a workflow from a JSON file."""
    with open(path, encoding="utf-8") as handle:
        return loads(handle.read(), library)
