"""Atomic file writes: never leave a half-written file behind.

A plain ``open(path, "w")`` + write is torn by a crash mid-write, leaving
a truncated file that poisons the next reader (a corrupted
``failures.json`` kills every later corpus replay run).  These helpers
write to a same-directory temp file and ``os.replace`` it into place —
the pattern the transposition cache already uses — so readers observe
either the old complete content or the new complete content, never a
prefix.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any

__all__ = ["atomic_write_text", "atomic_write_json"]


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``)."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(
        prefix=f".{os.path.basename(path)}.", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise


def atomic_write_json(
    path: str,
    payload: Any,
    indent: int | None = 2,
    sort_keys: bool = True,
) -> None:
    """Serialize ``payload`` and write it to ``path`` atomically."""
    atomic_write_text(
        path, json.dumps(payload, indent=indent, sort_keys=sort_keys) + "\n"
    )
