"""EXPLAIN-style rendering: the workflow with its estimated costs.

``explain`` combines the topological outline with the cost model's
per-node cardinalities and costs — the optimizer's view of the plan, the
way database EXPLAIN shows the planner's.  ``explain_diff`` puts the
initial and optimized plans side by side with per-node cost deltas
attributed to the lineage steps that caused them, and ``explain_dot``
exports a Graphviz document of the cost-annotated plan plus the search
trace — the ``repro explain --diff`` / ``--dot`` surfaces.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.activity import Activity
from repro.core.cost.estimator import estimate
from repro.core.cost.model import CostModel, ProcessedRowsCostModel
from repro.core.recordset import RecordSet
from repro.core.workflow import ETLWorkflow
from repro.io.render import _dot_escape, _dot_label

__all__ = ["explain", "explain_diff", "explain_dot"]


def explain(workflow: ETLWorkflow, model: CostModel | None = None) -> str:
    """A cost-annotated, topologically ordered rendering of the workflow."""
    model = model if model is not None else ProcessedRowsCostModel()
    report = estimate(workflow, model)
    lines = [
        f"{'node':<10}{'what':<30}{'rows out':>12}{'cost':>12}{'%':>6}"
    ]
    total = report.total if report.total else 1.0
    for node in workflow.topological_order():
        cards = report.cardinalities[node]
        if isinstance(node, RecordSet):
            label = f"{node.name} ({node.kind.value})"
            cost_text, share_text = "-", ""
        else:
            assert isinstance(node, Activity)
            label = node.name
            cost = report.cost_of(node)
            cost_text = f"{cost:,.0f}"
            share_text = f"{100 * cost / total:.0f}"
        lines.append(
            f"[{node.id}]".ljust(10)
            + f"{label:<30}{cards:>12,.0f}{cost_text:>12}{share_text:>6}"
        )
    lines.append(f"{'total':<52}{report.total:>18,.0f}")
    return "\n".join(lines)


# -- plan diff (repro explain --diff) --------------------------------------------------


def _step_parts(step) -> tuple[str, str, float]:
    """(mnemonic, description, cost_after) of a lineage step in any of its
    serialized forms (LineageStep, dict, or bare description string)."""
    if isinstance(step, dict):
        return (
            str(step.get("mnemonic", "")),
            str(step.get("transition", "")),
            float(step.get("cost_after", 0.0)),
        )
    if isinstance(step, str):
        return step.partition("(")[0], step, 0.0
    return step.mnemonic, step.transition, float(step.cost_after)


def _step_args(description: str) -> tuple[str, ...]:
    """The node ids a ``describe()`` string names (``SWA(5,6)`` -> 5, 6)."""
    _, _, rest = description.partition("(")
    if not rest.endswith(")"):
        return ()
    return tuple(part.strip() for part in rest[:-1].split(","))


def _activity_costs(workflow: ETLWorkflow, report) -> dict[str, float]:
    return {
        node.id: report.cost_of(node)
        for node in workflow.topological_order()
        if isinstance(node, Activity)
    }


def explain_diff(
    initial: ETLWorkflow,
    best: ETLWorkflow,
    model: CostModel | None = None,
    lineage: Sequence = (),
) -> str:
    """Before/after plans side by side, with per-node cost deltas
    attributed to the lineage steps that moved them.

    Args:
        initial: the initial workflow ``S0``.
        best: the optimized workflow.
        model: cost model for the annotations (default: processed-rows).
        lineage: the winning transition chain
            (``OptimizationResult.lineage`` or its dict/string forms);
            the "steps" column of the per-node table lists the 1-based
            lineage steps whose transition names that node.
    """
    model = model if model is not None else ProcessedRowsCostModel()
    before = estimate(initial, model)
    after = estimate(best, model)
    steps = [_step_parts(step) for step in lineage]

    # Side-by-side plans.
    left = explain(initial, model).splitlines()
    right = explain(best, model).splitlines()
    width = max((len(line) for line in left), default=0)
    height = max(len(left), len(right))
    left += [""] * (height - len(left))
    right += [""] * (height - len(right))
    lines = [f"{'initial plan':<{width}}  |  optimized plan"]
    lines.append(f"{'-' * width}  |  {'-' * max(len(l) for l in right)}")
    lines.extend(
        f"{a:<{width}}  |  {b}" for a, b in zip(left, right)
    )

    # Per-node cost deltas, attributed to lineage steps.
    costs_before = _activity_costs(initial, before)
    costs_after = _activity_costs(best, after)
    node_ids = sorted(
        set(costs_before) | set(costs_after),
        key=lambda node_id: (len(node_id), node_id),
    )
    lines.append("")
    lines.append(
        f"{'node':<10}{'cost before':>14}{'cost after':>14}{'delta':>14}"
        "  steps"
    )
    for node_id in node_ids:
        b = costs_before.get(node_id)
        a = costs_after.get(node_id)
        delta = (
            f"{a - b:+,.0f}" if a is not None and b is not None else "—"
        )
        touched = [
            str(index + 1)
            for index, (_, description, _) in enumerate(steps)
            if node_id in _step_args(description)
        ]
        lines.append(
            f"[{node_id}]".ljust(10)
            + (f"{b:>14,.0f}" if b is not None else f"{'—':>14}")
            + (f"{a:>14,.0f}" if a is not None else f"{'—':>14}")
            + f"{delta:>14}"
            + ("  " + ",".join(touched) if touched else "")
        )
    lines.append(
        f"{'total':<10}{before.total:>14,.0f}{after.total:>14,.0f}"
        f"{after.total - before.total:>+14,.0f}"
    )

    # The winning chain itself, with per-step cost attribution.
    lines.append("")
    if steps:
        lines.append(
            f"{'step':<6}{'transition':<24}{'cost after':>14}{'delta':>14}"
        )
        previous = before.total
        for index, (_, description, cost_after) in enumerate(steps, start=1):
            lines.append(
                f"{index:<6}{description:<24}{cost_after:>14,.0f}"
                f"{cost_after - previous:>+14,.0f}"
            )
            previous = cost_after
    else:
        lines.append("lineage: none (initial state is optimal)")
    return "\n".join(lines)


# -- annotated DOT export (repro explain --dot) ----------------------------------------


def explain_dot(
    workflow: ETLWorkflow,
    model: CostModel | None = None,
    lineage: Iterable = (),
    title: str = "optimized plan",
) -> str:
    """Graphviz export of the cost-annotated plan plus the search trace.

    The workflow graph carries per-node cost/cardinality annotations; when
    a ``lineage`` is given, a ``search trace`` cluster chains the winning
    transitions in application order, each annotated with the cost it
    reached — the figure-style companion of :func:`explain_diff`.
    """
    model = model if model is not None else ProcessedRowsCostModel()
    report = estimate(workflow, model)
    lines = [
        "digraph etl {",
        "  rankdir=LR;",
        f'  label="{_dot_escape(title)}";',
        "  node [fontsize=10];",
    ]
    for node in workflow.topological_order():
        node_id = _dot_escape(node.id)
        cards = report.cardinalities[node]
        if isinstance(node, RecordSet):
            shape = "box3d" if node.is_source or node.is_target else "box"
            label = _dot_label(
                f"{node.id}: {node.name}", f"{cards:,.0f} rows"
            )
            lines.append(f'  "{node_id}" [shape={shape}, label="{label}"];')
        else:
            assert isinstance(node, Activity)
            cost = report.cost_of(node)
            label = _dot_label(
                f"{node.id}: {node.name}",
                f"cost {cost:,.0f} · {cards:,.0f} rows",
            )
            lines.append(
                f'  "{node_id}" [shape=ellipse, label="{label}"];'
            )
    for provider, consumer in workflow.graph.edges:
        lines.append(
            f'  "{_dot_escape(provider.id)}" -> '
            f'"{_dot_escape(consumer.id)}";'
        )
    steps = [_step_parts(step) for step in lineage]
    if steps:
        lines.append("  subgraph cluster_trace {")
        lines.append('    label="search trace";')
        lines.append("    node [shape=note, fontsize=9];")
        lines.append('    "trace_0" [label="S0"];')
        for index, (_, description, cost_after) in enumerate(steps, start=1):
            label = _dot_label(
                f"{index}. {description}", f"cost {cost_after:,.0f}"
            )
            lines.append(f'    "trace_{index}" [label="{label}"];')
            lines.append(f'    "trace_{index - 1}" -> "trace_{index}";')
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)
