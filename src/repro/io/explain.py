"""EXPLAIN-style rendering: the workflow with its estimated costs.

``explain`` combines the topological outline with the cost model's
per-node cardinalities and costs — the optimizer's view of the plan, the
way database EXPLAIN shows the planner's.  Handy before/after comparisons
live in the examples.
"""

from __future__ import annotations

from repro.core.activity import Activity
from repro.core.cost.estimator import estimate
from repro.core.cost.model import CostModel, ProcessedRowsCostModel
from repro.core.recordset import RecordSet
from repro.core.workflow import ETLWorkflow

__all__ = ["explain"]


def explain(workflow: ETLWorkflow, model: CostModel | None = None) -> str:
    """A cost-annotated, topologically ordered rendering of the workflow."""
    model = model if model is not None else ProcessedRowsCostModel()
    report = estimate(workflow, model)
    lines = [
        f"{'node':<10}{'what':<30}{'rows out':>12}{'cost':>12}{'%':>6}"
    ]
    total = report.total if report.total else 1.0
    for node in workflow.topological_order():
        cards = report.cardinalities[node]
        if isinstance(node, RecordSet):
            label = f"{node.name} ({node.kind.value})"
            cost_text, share_text = "-", ""
        else:
            assert isinstance(node, Activity)
            label = node.name
            cost = report.cost_of(node)
            cost_text = f"{cost:,.0f}"
            share_text = f"{100 * cost / total:.0f}"
        lines.append(
            f"[{node.id}]".ljust(10)
            + f"{label:<30}{cards:>12,.0f}{cost_text:>12}{share_text:>6}"
        )
    lines.append(f"{'total':<52}{report.total:>18,.0f}")
    return "\n".join(lines)
