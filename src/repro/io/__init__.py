"""Workflow serialization and rendering."""

from repro.io.json_io import (
    dumps,
    load,
    loads,
    save,
    workflow_from_dict,
    workflow_to_dict,
)
from repro.io.explain import explain, explain_diff, explain_dot
from repro.io.render import to_dot, to_text

__all__ = [
    "workflow_to_dict",
    "workflow_from_dict",
    "dumps",
    "loads",
    "save",
    "load",
    "to_dot",
    "explain",
    "explain_diff",
    "explain_dot",
    "to_text",
]
