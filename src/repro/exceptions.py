"""Exception hierarchy for the repro library.

All library errors derive from :class:`ReproError`, so callers can catch one
type.  More specific subclasses distinguish modeling mistakes (bad workflow
construction) from optimizer-internal conditions (inapplicable transitions).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class NamingError(ReproError):
    """A violation of the naming principle (section 3.1 of the paper).

    Raised when two different real-world entities are mapped to the same
    reference attribute name, or when a synonym is remapped inconsistently.
    """


class SchemaError(ReproError):
    """An inconsistency between schemata.

    Examples: an activity whose functionality schema is not a subset of its
    input schema, a union whose branches disagree on their schemas, or a
    target recordset receiving data under the wrong schema.
    """


class WorkflowError(ReproError):
    """A structurally invalid workflow graph.

    Examples: cycles, activities without providers or consumers, or an
    activity wired with the wrong number of inputs for its arity.
    """


class TransitionError(ReproError):
    """A transition was applied to a state where it is not applicable.

    The optimizer normally checks applicability first; user code applying
    transitions manually sees this exception when a precondition fails.
    """


class TemplateError(ReproError):
    """An activity template was declared or instantiated incorrectly."""


class ExecutionError(ReproError):
    """The execution engine could not run a workflow on concrete data."""


class SearchBudgetExceeded(ReproError):
    """Internal signal that a search exhausted its state/time budget.

    Search algorithms catch this and return their best-so-far result with
    ``completed=False``; it never escapes the public API.
    """
