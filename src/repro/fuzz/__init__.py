"""Differential fuzzing and conformance verification of the optimizer.

The paper's correctness claim (Theorem 2) is that every SWA / FAC / DIS /
MER / SPL transition produces an *equivalent* workflow.  The library
carries two halves of an equivalence oracle — the symbolic post-condition
check (:mod:`repro.core.equivalence`) and the empirical same-data /
same-output check (:mod:`repro.engine.validate`) — plus a cost model whose
cardinality propagation mirrors the execution engine's row counters.

This package hammers long random transition chains against all three at
once:

* :mod:`repro.fuzz.oracles` — the conformance oracle: symbolic
  equivalence, empirical equivalence, and cost-model conformance
  (predicted processed rows vs. the executor's counters);
* :mod:`repro.fuzz.chain` — the transition-chain fuzzer: generate a
  workload from a seed, walk a random chain of enumerated transitions
  (including the MER/SPL packaging moves the search excludes), and check
  every intermediate state;
* :mod:`repro.fuzz.shrink` — minimizes a failing chain to the shortest
  reproducing sub-chain and the smallest source-data slice, and emits a
  deterministic JSON repro artifact;
* :mod:`repro.fuzz.corpus` — run orchestration, per-transition violation
  statistics, and persistence of failing seeds for regression replay.

The ``repro fuzz`` CLI subcommand drives :func:`run_fuzz` end to end.
"""

from repro.fuzz.chain import (
    ChainStep,
    FuzzConfig,
    FuzzFailure,
    SeedResult,
    fuzz_candidates,
    fuzz_seed,
    replay_chain,
)
from repro.fuzz.corpus import FuzzReport, load_known_failures, run_fuzz
from repro.fuzz.oracles import ConformanceOracle, OracleConfig, Violation
from repro.fuzz.shrink import (
    ShrunkRepro,
    dump_artifact,
    repro_artifact,
    save_artifact,
    shrink_failure,
)

__all__ = [
    "ChainStep",
    "ConformanceOracle",
    "FuzzConfig",
    "FuzzFailure",
    "FuzzReport",
    "OracleConfig",
    "SeedResult",
    "ShrunkRepro",
    "Violation",
    "dump_artifact",
    "fuzz_candidates",
    "fuzz_seed",
    "load_known_failures",
    "replay_chain",
    "repro_artifact",
    "run_fuzz",
    "save_artifact",
    "shrink_failure",
]
