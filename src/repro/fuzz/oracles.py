"""The conformance oracle: three independent checks per fuzzed state.

Every state a fuzz chain derives is compared against the *initial* state
of its workload:

* **symbolic** — :func:`repro.core.equivalence.symbolically_equivalent`:
  same target schemas, same workflow post-condition;
* **empirical** — the executor produces identical target multisets on the
  same source data (the baseline run is cached, so a chain of ``k`` states
  costs ``k + 1`` executions, not ``2k``);
* **cost conformance** — the cost model's cardinality propagation must
  agree with the engine's row counters.  The candidate's selectivities are
  first *calibrated* from its own run (measured output/input ratios), so
  the check isolates the model's propagation arithmetic from the noise of
  assigned selectivities: a filter whose declared selectivity is 0.4 but
  which actually keeps 55 % of its rows is not a model bug, whereas a
  union whose predicted processed rows disagree with the engine is.

Any exception escaping a check is itself reported as a ``crash``
violation — a state that crashes the engine is at least as alarming as
one that produces wrong rows.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Mapping
from dataclasses import dataclass, replace

from repro.core.activity import CompositeActivity
from repro.core.cost.model import CostModel, ProcessedRowsCostModel
from repro.core.equivalence import symbolically_equivalent
from repro.core.recordset import RecordSet
from repro.core.workflow import ETLWorkflow
from repro.engine.calibrate import apply_selectivities
from repro.engine.executor import ExecutionStats, Executor, iter_components
from repro.engine.rows import Row, as_multiset

__all__ = [
    "Violation",
    "OracleConfig",
    "ConformanceOracle",
    "predicted_processed_rows",
]


@dataclass(frozen=True)
class Violation:
    """One oracle disagreement, annotated with where in the chain it fired."""

    #: ``symbolic`` | ``empirical`` | ``cost`` | ``delta-cost`` | ``crash``
    kind: str
    detail: str
    #: 1-based step in the fuzz chain (-1 when checked outside a chain).
    step: int = -1
    #: ``describe()`` of the transition that produced the state.
    transition: str = ""

    def at(self, step: int, transition: str) -> "Violation":
        return replace(self, step=step, transition=transition)

    def to_dict(self) -> dict[str, object]:
        return {
            "kind": self.kind,
            "detail": self.detail,
            "step": self.step,
            "transition": self.transition,
        }

    def __str__(self) -> str:
        where = f" after step {self.step} {self.transition}" if self.step >= 0 else ""
        return f"[{self.kind}]{where}: {self.detail}"


@dataclass(frozen=True)
class OracleConfig:
    """Which checks run, and how tight the cost-conformance tolerance is."""

    check_symbolic: bool = True
    check_empirical: bool = True
    check_cost: bool = True
    #: Per-activity tolerance: |predicted - actual| <= abs_tol + rel_tol*actual.
    rel_tol: float = 0.05
    abs_tol: float = 2.0


def _measured_selectivities(
    workflow: ETLWorkflow, stats: ExecutionStats
) -> dict[str, float]:
    """Output/input ratio per unary activity id, from an existing run."""
    measured: dict[str, float] = {}
    for activity in workflow.activities():
        for component in iter_components(activity):
            if not component.is_unary:
                continue
            processed = stats.rows_processed.get(component.id)
            if processed:
                measured[component.id] = (
                    stats.rows_output[component.id] / processed
                )
    return measured


def predicted_processed_rows(
    workflow: ETLWorkflow,
    model: CostModel,
    source_sizes: Mapping[str, int],
) -> dict[str, float]:
    """Model-predicted processed-row count per (component) activity id.

    Cardinalities start from the *actual* source sizes (not the recordsets'
    declared cardinalities) and flow through ``model.output_cardinality``;
    composites are unfolded component by component, matching the executor's
    per-component accounting.
    """
    cards: dict[object, float] = {}
    predicted: dict[str, float] = {}
    for node in workflow.topological_order():
        if isinstance(node, RecordSet):
            if node.is_source:
                cards[node] = float(source_sizes.get(node.name, 0))
            else:
                cards[node] = cards[workflow.providers(node)[0]]
            continue
        input_cards = tuple(cards[p] for p in workflow.providers(node))
        if isinstance(node, CompositeActivity):
            card = input_cards[0]
            for component in iter_components(node):
                predicted[component.id] = card
                card = model.output_cardinality(component, (card,))
            cards[node] = card
        else:
            predicted[node.id] = float(sum(input_cards))
            cards[node] = model.output_cardinality(node, input_cards)
    return predicted


class ConformanceOracle:
    """All three checks bound to one baseline workflow + source data.

    The baseline is executed once at construction; every subsequent
    :meth:`check` executes only the candidate.
    """

    def __init__(
        self,
        baseline: ETLWorkflow,
        source_data: Mapping[str, list[Row]],
        executor: Executor | None = None,
        model: CostModel | None = None,
        config: OracleConfig | None = None,
    ):
        self.baseline = baseline
        self.source_data = source_data
        self.executor = executor if executor is not None else Executor()
        self.model = model if model is not None else ProcessedRowsCostModel()
        self.config = config if config is not None else OracleConfig()
        self._source_sizes = {
            name: len(rows) for name, rows in source_data.items()
        }
        baseline_run = self.executor.run(baseline, source_data)
        self._baseline_bags: dict[str, Counter] = {
            name: as_multiset(rows)
            for name, rows in baseline_run.targets.items()
        }

    # -- the three checks -------------------------------------------------

    def check(self, candidate: ETLWorkflow) -> list[Violation]:
        """All violations of ``candidate`` against the baseline (empty = ok)."""
        violations: list[Violation] = []
        if self.config.check_symbolic:
            violations.extend(self._check_symbolic(candidate))
        if self.config.check_empirical or self.config.check_cost:
            try:
                run = self.executor.run(candidate, self.source_data)
            except Exception as exc:  # noqa: BLE001 - any crash is a finding
                violations.append(
                    Violation("crash", f"execution failed: {exc!r}")
                )
                return violations
            if self.config.check_empirical:
                violations.extend(self._check_empirical(run.targets))
            if self.config.check_cost:
                violations.extend(self._check_cost(candidate, run.stats))
        return violations

    def _check_symbolic(self, candidate: ETLWorkflow) -> list[Violation]:
        try:
            report = symbolically_equivalent(self.baseline, candidate)
        except Exception as exc:  # noqa: BLE001
            return [Violation("crash", f"symbolic check failed: {exc!r}")]
        if report.equivalent:
            return []
        parts: list[str] = list(report.schema_mismatches)
        if report.only_in_first:
            parts.append(
                "post-conditions only in baseline: "
                + ", ".join(sorted(str(p) for p in report.only_in_first))
            )
        if report.only_in_second:
            parts.append(
                "post-conditions only in candidate: "
                + ", ".join(sorted(str(p) for p in report.only_in_second))
            )
        return [Violation("symbolic", "; ".join(parts))]

    def _check_empirical(
        self, targets: Mapping[str, list[Row]]
    ) -> list[Violation]:
        violations: list[Violation] = []
        names = set(self._baseline_bags) | set(targets)
        for name in sorted(names):
            expected = self._baseline_bags.get(name, Counter())
            actual = as_multiset(targets.get(name, []))
            if expected != actual:
                missing = expected - actual
                extra = actual - expected
                violations.append(
                    Violation(
                        "empirical",
                        f"target {name}: {sum(missing.values())} row(s) lost, "
                        f"{sum(extra.values())} row(s) invented vs. baseline",
                    )
                )
        return violations

    def _check_cost(
        self, candidate: ETLWorkflow, stats: ExecutionStats
    ) -> list[Violation]:
        try:
            calibrated = apply_selectivities(
                candidate, _measured_selectivities(candidate, stats)
            )
            predicted = predicted_processed_rows(
                calibrated, self.model, self._source_sizes
            )
        except Exception as exc:  # noqa: BLE001
            return [Violation("crash", f"cost check failed: {exc!r}")]
        violations: list[Violation] = []
        for activity_id in sorted(predicted):
            expected = predicted[activity_id]
            actual = stats.rows_processed.get(activity_id, 0)
            tolerance = self.config.abs_tol + self.config.rel_tol * actual
            if abs(expected - actual) > tolerance:
                violations.append(
                    Violation(
                        "cost",
                        f"activity {activity_id}: model predicts "
                        f"{expected:.1f} processed rows, engine counted "
                        f"{actual}",
                    )
                )
        return violations
