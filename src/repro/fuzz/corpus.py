"""Fuzz-run orchestration, reporting, and corpus persistence.

:func:`run_fuzz` drives :func:`~repro.fuzz.chain.fuzz_seed` over a seed
range, shrinks any failure, and aggregates a :class:`FuzzReport` — seeds
run, states checked, transitions applied per mnemonic, and the violation
count attributed to the transition kind that produced each failing state.

A *corpus directory* makes runs cumulative:

* ``failures.json`` — the (category, seed) coordinates of every failure
  ever observed; subsequent runs replay these first, so a fixed bug stays
  fixed (regression seeds) and an open one is rediscovered immediately;
* ``<category>-seed<seed>.json`` — the shrunk repro artifact per failure;
* ``summary.json`` — the report of the most recent run.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from dataclasses import dataclass, field

from repro.core.cost.model import CostModel
from repro.fuzz.chain import FuzzConfig, fuzz_seed
from repro.fuzz.shrink import save_artifact, shrink_failure
from repro.io.atomic import atomic_write_json
from repro.obs import get_recorder

__all__ = ["FuzzReport", "run_fuzz", "load_known_failures"]


def _seed_task(args: tuple) -> object:
    """One fuzz seed as a pool task (pure; see ``run_fuzz(jobs=...)``)."""
    config, category, seed, model = args
    return fuzz_seed(config, seed, category=category, model=model)

_FAILURES_FILE = "failures.json"
_SUMMARY_FILE = "summary.json"


@dataclass
class FuzzReport:
    """Aggregated outcome of one fuzz run."""

    config: FuzzConfig
    seeds_run: int = 0
    states_checked: int = 0
    transitions_applied: Counter = field(default_factory=Counter)
    violations_by_transition: Counter = field(default_factory=Counter)
    #: One summary dict per failing seed (see ``_failure_summary``).
    failures: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict[str, object]:
        return {
            "categories": list(self.config.categories),
            "chain_length": self.config.chain_length,
            "rows_per_source": self.config.rows_per_source,
            "data_seed": self.config.data_seed,
            "include_packaging": self.config.include_packaging,
            "seeds_run": self.seeds_run,
            "states_checked": self.states_checked,
            "transitions_applied": dict(sorted(self.transitions_applied.items())),
            "violations_by_transition": dict(
                sorted(self.violations_by_transition.items())
            ),
            "failures": self.failures,
        }

    def summary(self) -> str:
        applied = ", ".join(
            f"{mnemonic}:{count}"
            for mnemonic, count in sorted(self.transitions_applied.items())
        ) or "none"
        lines = [
            f"fuzz: {self.seeds_run} seed(s), {self.states_checked} state(s) "
            f"checked, transitions applied: {applied}",
        ]
        if self.ok:
            lines.append(
                "no equivalence or cost-conformance violations found"
            )
        else:
            lines.append(f"{len(self.failures)} violating seed(s):")
            for failure in self.failures:
                kinds = ",".join(failure["kinds"])
                lines.append(
                    f"  {failure['category']} seed {failure['seed']}: "
                    f"step {failure['step']} {failure['transition']} "
                    f"[{kinds}] -> chain shrunk to "
                    f"{len(failure['chain'])} step(s), "
                    f"{failure['rows_per_source']} row(s)/source"
                )
        return "\n".join(lines)


def load_known_failures(corpus_dir: str) -> list[tuple[str, int]]:
    """The (category, seed) pairs recorded by previous runs, oldest first."""
    path = os.path.join(corpus_dir, _FAILURES_FILE)
    if not os.path.exists(path):
        return []
    with open(path, encoding="utf-8") as handle:
        entries = json.load(handle)
    return [(entry["category"], entry["seed"]) for entry in entries]


def _record_failure(corpus_dir: str, category: str, seed: int) -> None:
    known = load_known_failures(corpus_dir)
    if (category, seed) not in known:
        known.append((category, seed))
    path = os.path.join(corpus_dir, _FAILURES_FILE)
    # Atomic: a crash mid-write must not corrupt the regression-seed list
    # that every later run replays first.
    atomic_write_json(
        path, [{"category": c, "seed": s} for c, s in known]
    )


def _failure_summary(shrunk, failure, transition_counts: Counter) -> dict:
    last_step = failure.steps[-1]
    return {
        "category": failure.category,
        "seed": failure.seed,
        "step": len(failure.steps),
        "transition": last_step.transition,
        "mnemonic": last_step.mnemonic,
        "kinds": sorted({v.kind for v in shrunk.violations} or
                        {v.kind for v in failure.violations}),
        "chain": list(shrunk.chain),
        "rows_per_source": shrunk.rows_per_source,
        "transition_mix": dict(sorted(transition_counts.items())),
    }


def run_fuzz(
    config: FuzzConfig,
    seeds: int = 25,
    base_seed: int = 0,
    corpus_dir: str | None = None,
    shrink: bool = True,
    model: CostModel | None = None,
    jobs: int = 1,
) -> FuzzReport:
    """Fuzz ``seeds`` seeds (known corpus failures first) and aggregate.

    With a ``corpus_dir``, failing seeds are persisted, their shrunk repro
    artifacts written next to them, and the run summary saved as
    ``summary.json``.  ``jobs != 1`` fans the (independent) seeds out
    across worker processes; results are aggregated in schedule order and
    shrinking stays in the main process, so the report is identical to a
    serial run's.
    """
    schedule: list[tuple[str, int]] = []
    if corpus_dir is not None:
        os.makedirs(corpus_dir, exist_ok=True)
        schedule.extend(load_known_failures(corpus_dir))
    for seed in range(base_seed, base_seed + seeds):
        pair = (config.category_for(seed), seed)
        if pair not in schedule:
            schedule.append(pair)

    tasks = [
        (config, category, seed, model) for category, seed in schedule
    ]
    if jobs != 1:
        from repro.core.search.parallel import WorkerPool

        with WorkerPool(jobs if jobs > 0 else (os.cpu_count() or 1)) as pool:
            results = pool.map(_seed_task, tasks)
    else:
        results = [_seed_task(task) for task in tasks]

    report = FuzzReport(config=config)
    recorder = get_recorder()
    for (category, seed), result in zip(schedule, results):
        recorder.record_span(
            "fuzz.seed", result.seconds, category=category, seed=seed
        )
        recorder.record_span(
            "fuzz.oracle",
            result.oracle_seconds,
            category=category,
            seed=seed,
        )
        for mnemonic, count in sorted(result.transition_counts.items()):
            recorder.counter("fuzz.transitions", mnemonic=mnemonic).add(count)
        report.seeds_run += 1
        report.states_checked += result.states_checked
        report.transitions_applied.update(result.transition_counts)
        if result.failure is None:
            continue
        failure = result.failure
        report.violations_by_transition[failure.steps[-1].mnemonic] += 1
        shrunk = (
            shrink_failure(failure, model=model, oracle_config=config.oracle)
            if shrink
            else None
        )
        if shrunk is not None:
            summary = _failure_summary(shrunk, failure, result.transition_counts)
        else:
            summary = {
                "category": failure.category,
                "seed": failure.seed,
                "step": len(failure.steps),
                "transition": failure.steps[-1].transition,
                "mnemonic": failure.steps[-1].mnemonic,
                "kinds": sorted({v.kind for v in failure.violations}),
                "chain": [s.transition for s in failure.steps],
                "rows_per_source": failure.rows_per_source,
                "transition_mix": dict(
                    sorted(result.transition_counts.items())
                ),
            }
        if corpus_dir is not None:
            _record_failure(corpus_dir, failure.category, failure.seed)
            if shrunk is not None:
                artifact_path = os.path.join(
                    corpus_dir, f"{failure.category}-seed{failure.seed}.json"
                )
                save_artifact(shrunk, artifact_path)
                summary["artifact"] = artifact_path
        report.failures.append(summary)

    if corpus_dir is not None:
        summary_path = os.path.join(corpus_dir, _SUMMARY_FILE)
        atomic_write_json(summary_path, report.to_dict())
    return report
