"""The transition-chain fuzzer.

One fuzz case is fully determined by ``(config, seed)``: the seed picks a
generated workload (:func:`repro.workloads.generate_workload` is
deterministic in ``(category, seed)``), a private RNG walks a random chain
of applicable transitions, and every intermediate state is checked against
the initial state by the :class:`~repro.fuzz.oracles.ConformanceOracle`.
A fourth, engine-free oracle rides along: the search hot path's
delta-maintained :class:`~repro.core.cost.estimator.CostReport` is carried
down the chain and compared *exactly* against a from-scratch estimate at
every state (:func:`check_delta_cost`); with ``REPRO_COST_ORACLE=1`` each
step is additionally re-applied through the incremental fast path, whose
twin check asserts fast-vs-slow agreement — a disagreement or crash there
surfaces as a violation rather than killing the run.

The candidate enumeration extends the search-facing
:func:`repro.core.transitions.candidate_transitions` (SWA / FAC / DIS)
with the MER and SPL packaging moves the search deliberately excludes —
Theorem 2 claims equivalence for all five, so the fuzzer exercises all
five.

Chains are recorded as ``(candidate index, describe())`` pairs.  The index
gives exact replay; the description string lets the shrinker re-match a
transition after earlier steps were removed (see
:func:`replay_chain`).
"""

from __future__ import annotations

import random
import time
from collections import Counter
from dataclasses import dataclass, field

from repro.core import flags
from repro.core.activity import Activity, CompositeActivity
from repro.core.cost.estimator import (
    CostReport,
    estimate,
    estimate_incremental,
)
from repro.core.cost.model import CostModel, ProcessedRowsCostModel
from repro.core.transitions import candidate_transitions
from repro.core.transitions.base import Transition
from repro.core.transitions.merge import Merge, Split
from repro.core.workflow import ETLWorkflow
from repro.engine.batches import ExecutionBudget
from repro.engine.executor import Executor
from repro.exceptions import ReproError
from repro.fuzz.oracles import ConformanceOracle, OracleConfig, Violation
from repro.workloads import CATEGORY_SPECS, generate_workload

__all__ = [
    "FuzzConfig",
    "ChainStep",
    "FuzzFailure",
    "SeedResult",
    "check_delta_cost",
    "fuzz_candidates",
    "fuzz_seed",
    "replay_chain",
    "replay_delta_cost",
]


@dataclass(frozen=True)
class FuzzConfig:
    """Everything a fuzz run needs beyond the seeds themselves."""

    #: Workload categories, assigned to seeds round-robin.
    categories: tuple[str, ...] = ("tiny", "small")
    #: Maximum transitions per chain.
    chain_length: int = 8
    #: Rows generated per source recordset.
    rows_per_source: int = 60
    #: Seed of the synthetic source data (independent of the workflow seed).
    data_seed: int = 0
    #: Also fuzz the MER/SPL packaging transitions.
    include_packaging: bool = True
    #: Chance per step of preferring a packaging move over a core move —
    #: adjacent unary pairs make MER candidates plentiful, so an unweighted
    #: walk degenerates into merge ping-pong.
    packaging_probability: float = 0.3
    oracle: OracleConfig = field(default_factory=OracleConfig)
    #: When set, every oracle execution streams under this budget, so the
    #: fuzzer differentially tests the streaming engine against the same
    #: equivalence and cost-conformance checks.
    execution_budget: ExecutionBudget | None = None
    #: Maintain a delta-costed :class:`CostReport` along each chain and
    #: compare it against a from-scratch estimate at every state — the
    #: search hot path's incremental costing, checked exactly (``==``,
    #: no epsilon).  Independently, ``REPRO_COST_ORACLE=1`` re-applies
    #: each step through the incremental fast path and reports any
    #: fast-vs-slow disagreement as a violation.
    check_delta_cost: bool = True

    def __post_init__(self) -> None:
        if not self.categories:
            raise ReproError(
                f"at least one workload category is required; choose from "
                f"{sorted(CATEGORY_SPECS)}"
            )
        unknown = [c for c in self.categories if c not in CATEGORY_SPECS]
        if unknown:
            raise ReproError(
                f"unknown workload categories {unknown}; choose from "
                f"{sorted(CATEGORY_SPECS)}"
            )
        if self.chain_length < 1:
            raise ReproError("chain_length must be at least 1")

    def category_for(self, seed: int) -> str:
        return self.categories[seed % len(self.categories)]


@dataclass(frozen=True)
class ChainStep:
    """One applied transition: position in the enumeration + description."""

    index: int
    transition: str
    mnemonic: str

    def to_dict(self) -> dict[str, object]:
        return {
            "index": self.index,
            "transition": self.transition,
            "mnemonic": self.mnemonic,
        }


@dataclass(frozen=True)
class FuzzFailure:
    """A reproducible oracle violation: workload coordinates + chain."""

    category: str
    seed: int
    rows_per_source: int
    data_seed: int
    include_packaging: bool
    steps: tuple[ChainStep, ...]
    violations: tuple[Violation, ...]


@dataclass
class SeedResult:
    """Outcome of fuzzing one seed."""

    category: str
    seed: int
    steps_applied: list[ChainStep]
    transition_counts: Counter
    states_checked: int
    failure: FuzzFailure | None
    #: Wall-clock of the whole seed and of its oracle checks alone.  Plain
    #: numbers (not spans) so pooled seed tasks stay picklable; run_fuzz
    #: turns them into ``fuzz.seed`` / ``fuzz.oracle`` telemetry spans.
    seconds: float = 0.0
    oracle_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.failure is None


def _packaging_candidates(workflow: ETLWorkflow) -> list[Transition]:
    """MER over adjacent unary pairs, SPL over merged activities."""
    candidates: list[Transition] = []
    activities = sorted(workflow.activities(), key=lambda a: a.id)
    for first in activities:
        if not first.is_unary:
            continue
        consumers = workflow.consumers(first)
        if len(consumers) != 1:
            continue
        second = consumers[0]
        if (
            isinstance(second, Activity)
            and second.is_unary
            and len(workflow.consumers(second)) == 1
        ):
            candidates.append(Merge(first, second))
    for activity in activities:
        if isinstance(activity, CompositeActivity):
            if len(workflow.consumers(activity)) == 1:
                candidates.append(Split(activity))
    return candidates


def fuzz_candidates(
    workflow: ETLWorkflow, include_packaging: bool = True
) -> list[Transition]:
    """All transition candidates of a state, in a deterministic order."""
    candidates = list(candidate_transitions(workflow))
    if include_packaging:
        candidates.extend(_packaging_candidates(workflow))
    return candidates


def check_delta_cost(
    parent_report: CostReport,
    transition: Transition,
    successor: ETLWorkflow,
    model: CostModel,
) -> tuple[CostReport, Violation | None]:
    """Compare delta-maintained costing of ``successor`` to a full pass.

    Returns the report to carry to the next step and ``None`` when the
    two agree; on divergence the *full* report is carried forward so one
    bad delta does not poison every later comparison.  The comparison is
    exact (``CostReport.__eq__``: total, per-node costs, cardinalities) —
    both sides end in :func:`math.fsum`, so there is no legitimate
    summation-order slack to forgive.
    """
    delta = estimate_incremental(
        successor, model, parent_report, transition.affected_nodes()
    )
    full = estimate(successor, model)
    if delta == full:
        return delta, None
    diverging = sorted(
        node.id
        for node in set(delta.cardinalities) | set(full.cardinalities)
        if delta.cardinalities.get(node) != full.cardinalities.get(node)
        or delta.node_costs.get(node) != full.node_costs.get(node)
    )
    shown = ", ".join(diverging[:6]) + ("…" if len(diverging) > 6 else "")
    return full, Violation(
        "delta-cost",
        f"delta-maintained cost {delta.total!r} vs full re-cost "
        f"{full.total!r}; {len(diverging)} node(s) diverge ({shown})",
    )


def replay_delta_cost(
    workflow: ETLWorkflow,
    descriptions: list[str] | tuple[str, ...],
    model: CostModel | None = None,
    include_packaging: bool = True,
) -> tuple[Violation, ...]:
    """Replay a chain by description, delta-cost checking every state.

    Pure model arithmetic — no engine runs — so the shrinker can afford
    it on every probe.  Returns the first violation (annotated with its
    step), or ``()`` when the chain diverges or every state agrees.
    """
    model = model if model is not None else ProcessedRowsCostModel()
    current = workflow
    report = estimate(current, model)
    for step_no, description in enumerate(descriptions, start=1):
        match = next(
            (
                t
                for t in fuzz_candidates(current, include_packaging)
                if t.describe() == description
            ),
            None,
        )
        if match is None:
            return ()
        successor = match.try_apply(current)
        if successor is None:
            return ()
        report, violation = check_delta_cost(report, match, successor, model)
        if violation is not None:
            return (violation.at(step_no, description),)
        current = successor
    return ()


def fuzz_seed(
    config: FuzzConfig,
    seed: int,
    category: str | None = None,
    model: CostModel | None = None,
) -> SeedResult:
    """Fuzz one seed: walk a random transition chain, checking every state."""
    category = category if category is not None else config.category_for(seed)
    workload = generate_workload(
        category, seed=seed, rows_per_source=config.rows_per_source
    )
    data = workload.make_data(config.data_seed)
    oracle = ConformanceOracle(
        workload.workflow,
        data,
        executor=Executor(
            context=workload.context, budget=config.execution_budget
        ),
        model=model,
        config=config.oracle,
    )
    rng = random.Random(0x5EED ^ (seed * 1_000_003) ^ config.data_seed)

    started = time.perf_counter()
    current = workload.workflow
    cost_model = model if model is not None else ProcessedRowsCostModel()
    report: CostReport | None = (
        estimate(current, cost_model) if config.check_delta_cost else None
    )
    steps: list[ChainStep] = []
    counts: Counter = Counter()
    states_checked = 0
    oracle_seconds = 0.0
    failure: FuzzFailure | None = None

    for _ in range(config.chain_length):
        core = list(candidate_transitions(current))
        packaging = (
            _packaging_candidates(current) if config.include_packaging else []
        )
        candidates = core + packaging
        if not candidates:
            break
        # Try the preferred pool first, the other as a fallback, each in a
        # random order; indices stay positions in the combined enumeration
        # (the order fuzz_candidates produces) so replays line up.
        core_indices = list(range(len(core)))
        packaging_indices = list(range(len(core), len(candidates)))
        prefer_packaging = bool(packaging) and (
            not core or rng.random() < config.packaging_probability
        )
        pools = (
            (packaging_indices, core_indices)
            if prefer_packaging
            else (core_indices, packaging_indices)
        )
        applied: tuple[int, Transition, ETLWorkflow] | None = None
        for pool in pools:
            for index in rng.sample(pool, len(pool)):
                transition = candidates[index]
                successor = transition.try_apply(current)
                if successor is not None:
                    applied = (index, transition, successor)
                    break
            if applied is not None:
                break
        if applied is None:
            break
        index, transition, successor = applied
        steps.append(ChainStep(index, transition.describe(), transition.mnemonic))
        counts[transition.mnemonic] += 1
        states_checked += 1
        check_started = time.perf_counter()
        violations = list(oracle.check(successor))
        if report is not None:
            report, cost_violation = check_delta_cost(
                report, transition, successor, cost_model
            )
            if cost_violation is not None:
                violations.append(cost_violation)
        if flags.cost_oracle_enabled():
            # Re-apply through the fast path, whose _apply_checked twin
            # runs both implementations and asserts they agree; any
            # disagreement (or raw crash) becomes a reported violation
            # instead of killing the fuzz loop.
            try:
                if transition.try_apply_fast(current) is None:
                    violations.append(
                        Violation(
                            "delta-cost",
                            "fast path rejects a transition the slow "
                            "path applied",
                        )
                    )
            except Exception as exc:  # noqa: BLE001 - any crash is a finding
                violations.append(
                    Violation(
                        "crash", f"fast-path twin check failed: {exc!r}"
                    )
                )
        oracle_seconds += time.perf_counter() - check_started
        if violations:
            step_no = len(steps)
            failure = FuzzFailure(
                category=category,
                seed=seed,
                rows_per_source=config.rows_per_source,
                data_seed=config.data_seed,
                include_packaging=config.include_packaging,
                steps=tuple(steps),
                violations=tuple(
                    v.at(step_no, transition.describe()) for v in violations
                ),
            )
            break
        current = successor

    return SeedResult(
        category=category,
        seed=seed,
        steps_applied=steps,
        transition_counts=counts,
        states_checked=states_checked,
        failure=failure,
        seconds=time.perf_counter() - started,
        oracle_seconds=oracle_seconds,
    )


def replay_chain(
    workflow: ETLWorkflow,
    descriptions: list[str] | tuple[str, ...],
    include_packaging: bool = True,
) -> ETLWorkflow | None:
    """Re-apply a chain by matching ``describe()`` strings.

    Returns the final state, or ``None`` when the chain diverges (a
    description no longer matches any applicable candidate — the normal
    outcome when the shrinker removed a step a later one depended on).
    """
    current = workflow
    for description in descriptions:
        match = next(
            (
                t
                for t in fuzz_candidates(current, include_packaging)
                if t.describe() == description
            ),
            None,
        )
        if match is None:
            return None
        successor = match.try_apply(current)
        if successor is None:
            return None
        current = successor
    return current
