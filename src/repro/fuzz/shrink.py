"""Failure minimization and deterministic repro artifacts.

Given a :class:`~repro.fuzz.chain.FuzzFailure`, the shrinker looks for

1. the shortest sub-chain of transitions that still trips an oracle —
   greedy delta debugging: repeatedly try dropping one step, replaying the
   remainder by description (:func:`~repro.fuzz.chain.replay_chain`) until
   no single step can be removed; and
2. the smallest source-data slice (rows per source) that still reproduces
   it — a binary search down from the failing size (symbolic violations
   are data-independent and typically shrink to zero rows).

The result serializes to a deterministic JSON artifact (sorted keys, the
:mod:`repro.io.json_io` workflow encoding) so a failure found on one
machine replays bit-identically on another.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.core.cost.model import CostModel
from repro.core.workflow import ETLWorkflow
from repro.engine.executor import Executor
from repro.fuzz.chain import FuzzFailure, replay_chain, replay_delta_cost
from repro.fuzz.oracles import ConformanceOracle, OracleConfig, Violation
from repro.io.atomic import atomic_write_text
from repro.io.json_io import workflow_to_dict
from repro.obs import lineage_mix
from repro.workloads import generate_workload

__all__ = [
    "ShrunkRepro",
    "shrink_failure",
    "repro_artifact",
    "dump_artifact",
    "save_artifact",
]

ARTIFACT_KIND = "repro-fuzz-failure"
ARTIFACT_VERSION = 1


@dataclass
class ShrunkRepro:
    """A minimized failure, ready to serialize."""

    failure: FuzzFailure
    #: Minimized chain (transition descriptions, in application order).
    chain: tuple[str, ...]
    #: Minimized rows per source that still reproduce the violation.
    rows_per_source: int
    #: Violations observed on the minimized reproduction.
    violations: tuple[Violation, ...]
    initial: ETLWorkflow
    failing: ETLWorkflow


class _Reproducer:
    """Replays (chain, data size) combinations for one failure's workload."""

    def __init__(
        self,
        failure: FuzzFailure,
        model: CostModel | None,
        oracle_config: OracleConfig | None,
    ):
        self.failure = failure
        self.model = model
        self.oracle_config = oracle_config
        self.workload = generate_workload(
            failure.category,
            seed=failure.seed,
            rows_per_source=failure.rows_per_source,
        )
        self._oracles: dict[int, ConformanceOracle] = {}

    def final_state(self, chain: tuple[str, ...]) -> ETLWorkflow | None:
        return replay_chain(
            self.workload.workflow, chain, self.failure.include_packaging
        )

    def _oracle(self, n_rows: int) -> ConformanceOracle:
        oracle = self._oracles.get(n_rows)
        if oracle is None:
            oracle = ConformanceOracle(
                self.workload.workflow,
                self.workload.make_data(self.failure.data_seed, n=n_rows),
                executor=Executor(context=self.workload.context),
                model=self.model,
                config=self.oracle_config,
            )
            self._oracles[n_rows] = oracle
        return oracle

    def violations(
        self, chain: tuple[str, ...], n_rows: int
    ) -> tuple[Violation, ...]:
        """Violations of the replayed chain on ``n_rows`` rows (empty = ok)."""
        if not chain:
            return ()
        final = self.final_state(chain)
        if final is None:
            return ()
        # Engine-free, so affordable on every probe: delta-cost failures
        # shrink like any other kind (and being data-independent, their
        # row slice shrinks to zero, as with symbolic violations).
        return tuple(self._oracle(n_rows).check(final)) + replay_delta_cost(
            self.workload.workflow,
            chain,
            model=self.model,
            include_packaging=self.failure.include_packaging,
        )


def shrink_failure(
    failure: FuzzFailure,
    model: CostModel | None = None,
    oracle_config: OracleConfig | None = None,
) -> ShrunkRepro:
    """Minimize a failure's chain and data slice.

    Falls back to the original chain/size when the failure does not
    reproduce under replay (e.g. a non-deterministic bug) — the artifact
    then records the unshrunk reproduction.
    """
    reproducer = _Reproducer(failure, model, oracle_config)
    chain = tuple(step.transition for step in failure.steps)
    n_rows = failure.rows_per_source
    violations = reproducer.violations(chain, n_rows)

    if violations:
        chain = _shrink_chain(reproducer, chain, n_rows)
        n_rows = _shrink_rows(reproducer, chain, n_rows)
        violations = reproducer.violations(chain, n_rows)
    else:
        # Not reproducible via replay; keep the recorded facts verbatim.
        violations = failure.violations

    final = reproducer.final_state(chain)
    return ShrunkRepro(
        failure=failure,
        chain=chain,
        rows_per_source=n_rows,
        violations=violations,
        initial=reproducer.workload.workflow,
        failing=final if final is not None else reproducer.workload.workflow,
    )


def _shrink_chain(
    reproducer: _Reproducer, chain: tuple[str, ...], n_rows: int
) -> tuple[str, ...]:
    """Greedily drop steps while the violation still reproduces."""
    changed = True
    while changed and len(chain) > 1:
        changed = False
        # Later steps first: the violation usually lives at the chain's end,
        # so the prefix is the most promising thing to discard.
        for index in range(len(chain) - 1, -1, -1):
            candidate = chain[:index] + chain[index + 1 :]
            if reproducer.violations(candidate, n_rows):
                chain = candidate
                changed = True
                break
    return chain


def _shrink_rows(
    reproducer: _Reproducer, chain: tuple[str, ...], n_rows: int
) -> int:
    """Binary-search the smallest per-source row count that reproduces."""
    low, high = 0, n_rows  # invariant: `high` reproduces
    while low < high:
        mid = (low + high) // 2
        if reproducer.violations(chain, mid):
            high = mid
        else:
            low = mid + 1
    return high


def repro_artifact(shrunk: ShrunkRepro) -> dict[str, object]:
    """The JSON-ready repro document (deterministic for a given failure)."""
    failure = shrunk.failure
    return {
        "kind": ARTIFACT_KIND,
        "format_version": ARTIFACT_VERSION,
        "workload": {
            "category": failure.category,
            "seed": failure.seed,
            "rows_per_source": failure.rows_per_source,
            "data_seed": failure.data_seed,
            "include_packaging": failure.include_packaging,
            "shrunk_rows_per_source": shrunk.rows_per_source,
        },
        "original_chain": [step.to_dict() for step in failure.steps],
        "transition_mix": lineage_mix(failure.steps),
        "chain": list(shrunk.chain),
        "shrunk_transition_mix": lineage_mix(shrunk.chain),
        "violations": [v.to_dict() for v in shrunk.violations],
        "initial_workflow": workflow_to_dict(shrunk.initial),
        "failing_workflow": workflow_to_dict(shrunk.failing),
    }


def dump_artifact(shrunk: ShrunkRepro) -> str:
    """Serialize the artifact deterministically (sorted keys, fixed indent)."""
    return json.dumps(repro_artifact(shrunk), indent=2, sort_keys=True)


def save_artifact(shrunk: ShrunkRepro, path: str) -> None:
    atomic_write_text(path, dump_artifact(shrunk) + "\n")
