"""The shipped template library.

These templates cover the activity vocabulary the paper's examples and
experiments use (section 1 example, Fig. 4, and the "selection, checking for
nulls, primary key violation, projection, function application" list of
section 2.2), plus the binary activities (union, join, difference,
intersection) that delimit local groups.

Semantics notes (the conservative interpretations DESIGN.md documents):

* ``pk_check`` models the common ETL *primary-key violation* check: each row
  is tested against an external reference key set (the warehouse's existing
  keys).  That makes it row-wise, hence freely swappable and distributable —
  matching the paper, which lists primary-key violation among swappable
  unary activities.  An intra-batch duplicate-elimination activity would not
  be row-wise and is deliberately not shipped as a swappable template.
* ``function_apply`` with ``output`` equal to its single input attribute is
  a *semantics-neutral in-place transform* (e.g. the A2E date reformat): the
  reference name is unchanged because, per the naming principle discussion
  in section 3.1, downstream activities treat the values equivalently.  A
  transform whose downstream consumers are format-sensitive must generate a
  fresh reference name (e.g. ``$2E: DCOST -> ECOST``) — that is what blocks
  illegal swaps via condition (3).
* ``aggregation`` generates its aggregate attribute and restricts its output
  to the group-by attributes plus generated aggregates; everything else is
  implicitly dropped.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

from repro.core.schema import EMPTY_SCHEMA, Schema
from repro.exceptions import SchemaError, TemplateError
from repro.templates.base import (
    ActivityKind,
    ActivityTemplate,
    CostShape,
    SchemaPlan,
)

__all__ = [
    "SELECTION",
    "NOT_NULL",
    "RANGE_CHECK",
    "PK_CHECK",
    "PROJECTION",
    "DISTINCT",
    "FUNCTION_APPLY",
    "SURROGATE_KEY",
    "AGGREGATION",
    "UNION",
    "JOIN",
    "DIFFERENCE",
    "INTERSECTION",
    "ALL_BUILTIN_TEMPLATES",
]

# Binary template names, used in ``distributes_over`` sets.
_UNION = "union"
_JOIN = "join"
_DIFFERENCE = "difference"
_INTERSECTION = "intersection"

_FILTER_DISTRIBUTES = frozenset({_UNION, _JOIN, _DIFFERENCE, _INTERSECTION})


def _single_attr_plan(params: Mapping[str, Any]) -> SchemaPlan:
    """Plan for filters parameterized by one checked attribute."""
    attr = params["attr"]
    return SchemaPlan(
        functionality_per_input=(Schema([attr]),),
        generated=EMPTY_SCHEMA,
        projected_out=EMPTY_SCHEMA,
    )


SELECTION = ActivityTemplate(
    name="selection",
    kind=ActivityKind.FILTER,
    arity=1,
    cost_shape=CostShape.LINEAR,
    param_names=("attr", "op", "value"),
    planner=_single_attr_plan,
    distributes_over=_FILTER_DISTRIBUTES,
    predicate_name="SEL",
    doc="Row-wise comparison filter: keep rows where `attr <op> value`.",
)

NOT_NULL = ActivityTemplate(
    name="not_null",
    kind=ActivityKind.FILTER,
    arity=1,
    cost_shape=CostShape.LINEAR,
    param_names=("attr",),
    planner=_single_attr_plan,
    distributes_over=_FILTER_DISTRIBUTES,
    predicate_name="NN",
    doc="Keep rows whose `attr` is not NULL (None).",
)

RANGE_CHECK = ActivityTemplate(
    name="range_check",
    kind=ActivityKind.FILTER,
    arity=1,
    cost_shape=CostShape.LINEAR,
    param_names=("attr", "low", "high"),
    planner=_single_attr_plan,
    distributes_over=_FILTER_DISTRIBUTES,
    predicate_name="RC",
    doc="Keep rows with low <= attr <= high (domain/business-rule check).",
)


def _pk_check_plan(params: Mapping[str, Any]) -> SchemaPlan:
    keys = tuple(params["key_attrs"])
    if not keys:
        raise TemplateError("pk_check: key_attrs must be non-empty")
    return SchemaPlan(
        functionality_per_input=(Schema(keys),),
        generated=EMPTY_SCHEMA,
        projected_out=EMPTY_SCHEMA,
    )


PK_CHECK = ActivityTemplate(
    name="pk_check",
    kind=ActivityKind.FILTER,
    arity=1,
    cost_shape=CostShape.LINEAR,
    param_names=("key_attrs", "reference"),
    planner=_pk_check_plan,
    distributes_over=_FILTER_DISTRIBUTES,
    predicate_name="PK",
    doc=(
        "Primary-key violation check: keep rows whose key is absent from the "
        "external reference key set named by `reference` (row-wise lookup "
        "against the warehouse's existing keys)."
    ),
)


def _projection_plan(params: Mapping[str, Any]) -> SchemaPlan:
    dropped = tuple(params["attrs"])
    if not dropped:
        raise TemplateError("projection: attrs (to drop) must be non-empty")
    return SchemaPlan(
        functionality_per_input=(EMPTY_SCHEMA,),
        generated=EMPTY_SCHEMA,
        projected_out=Schema(dropped),
    )


PROJECTION = ActivityTemplate(
    name="projection",
    kind=ActivityKind.FUNCTION,
    arity=1,
    cost_shape=CostShape.LINEAR,
    param_names=("attrs",),
    planner=_projection_plan,
    distributes_over=frozenset({_UNION}),
    predicate_name="PIout",
    doc="Projected-out activity: drop the listed attributes from the flow.",
)


def _function_apply_plan(params: Mapping[str, Any]) -> SchemaPlan:
    inputs = tuple(params["inputs"])
    output = params["output"]
    drop_inputs = params.get("drop_inputs", True)
    if not inputs:
        raise TemplateError("function_apply: inputs must be non-empty")
    if output in inputs:
        if len(inputs) != 1:
            raise TemplateError(
                "function_apply: in-place output requires exactly one input"
            )
        # Semantics-neutral in-place transform: the reference name survives,
        # so nothing is generated or projected out (see module docstring).
        return SchemaPlan(
            functionality_per_input=(Schema(inputs),),
            generated=EMPTY_SCHEMA,
            projected_out=EMPTY_SCHEMA,
        )
    return SchemaPlan(
        functionality_per_input=(Schema(inputs),),
        generated=Schema([output]),
        projected_out=Schema(inputs) if drop_inputs else EMPTY_SCHEMA,
    )


def _function_distributes(params: Mapping[str, Any]) -> frozenset[str]:
    if params.get("injective", False):
        return frozenset({_UNION, _DIFFERENCE, _INTERSECTION})
    return frozenset({_UNION})


FUNCTION_APPLY = ActivityTemplate(
    name="function_apply",
    kind=ActivityKind.FUNCTION,
    arity=1,
    cost_shape=CostShape.LINEAR,
    param_names=("function", "inputs", "output"),
    optional_param_names=("drop_inputs", "injective"),
    planner=_function_apply_plan,
    distributes_over=frozenset({_UNION}),
    predicate_name="FN",
    doc=(
        "Row-wise data-manipulation function, e.g. `$2E(DCOST) -> ECOST` or "
        "the in-place date reformat `A2E(DATE) -> DATE`.  `function` names a "
        "scalar function registered with the execution engine."
    ),
)


def _surrogate_key_plan(params: Mapping[str, Any]) -> SchemaPlan:
    key = params["key_attr"]
    skey = params["skey_attr"]
    if key == skey:
        raise TemplateError("surrogate_key: key_attr and skey_attr must differ")
    return SchemaPlan(
        functionality_per_input=(Schema([key]),),
        generated=Schema([skey]),
        projected_out=Schema([key]),
    )


SURROGATE_KEY = ActivityTemplate(
    name="surrogate_key",
    kind=ActivityKind.FUNCTION,
    arity=1,
    cost_shape=CostShape.SORT,
    param_names=("key_attr", "skey_attr", "lookup"),
    optional_param_names=("lookup_size",),
    planner=_surrogate_key_plan,
    distributes_over=frozenset({_UNION, _DIFFERENCE, _INTERSECTION}),
    injective=True,
    predicate_name="SK",
    doc=(
        "Surrogate-key assignment: replace the production key with a "
        "warehouse surrogate via the lookup table named by `lookup` "
        "(injective mapping; sort/lookup cost shape, cf. Fig. 4)."
    ),
)


def _aggregation_plan(params: Mapping[str, Any]) -> SchemaPlan:
    group_by = tuple(params["group_by"])
    measure = params["measure"]
    output = params["output"]
    if measure in group_by:
        raise TemplateError("aggregation: measure cannot be a group-by attribute")
    if output in group_by:
        raise TemplateError("aggregation: output collides with a group-by attribute")
    return SchemaPlan(
        functionality_per_input=(Schema(group_by + (measure,)),),
        generated=Schema([output]),
        projected_out=Schema([measure]),
    )


def _aggregation_output(
    params: Mapping[str, Any], input_schemas: tuple[Schema, ...]
) -> Schema:
    """Aggregation output: group-by attributes plus the aggregate."""
    return Schema(tuple(params["group_by"]) + (params["output"],))


AGGREGATION = ActivityTemplate(
    name="aggregation",
    kind=ActivityKind.AGGREGATION,
    arity=1,
    cost_shape=CostShape.SORT,
    param_names=("group_by", "measure", "agg", "output"),
    planner=_aggregation_plan,
    distributes_over=frozenset(),
    predicate_name="GAMMA",
    doc=(
        "Group rows by `group_by` and aggregate `measure` with `agg` "
        "(sum/min/max/count/avg) into the generated attribute `output`; all "
        "other attributes are dropped."
    ),
)


def _distinct_plan(params: Mapping[str, Any]) -> SchemaPlan:
    keys = tuple(params["group_by"])
    if not keys:
        raise TemplateError("distinct: group_by (dedup keys) must be non-empty")
    return SchemaPlan(
        functionality_per_input=(Schema(keys),),
        generated=EMPTY_SCHEMA,
        projected_out=EMPTY_SCHEMA,
    )


DISTINCT = ActivityTemplate(
    name="distinct",
    kind=ActivityKind.AGGREGATION,
    arity=1,
    cost_shape=CostShape.SORT,
    param_names=("group_by",),
    planner=_distinct_plan,
    distributes_over=frozenset(),
    predicate_name="DST",
    doc=(
        "Duplicate elimination by key: keep one (deterministically chosen) "
        "row per distinct `group_by` value.  Declared AGGREGATION because it "
        "is *not* row-wise: only filters/injective in-place functions over "
        "the dedup keys may cross it (the swap guard enforces this)."
    ),
)


def _no_param_binary_plan(params: Mapping[str, Any]) -> SchemaPlan:
    return SchemaPlan(
        functionality_per_input=(EMPTY_SCHEMA, EMPTY_SCHEMA),
        generated=EMPTY_SCHEMA,
        projected_out=EMPTY_SCHEMA,
    )


UNION = ActivityTemplate(
    name="union",
    kind=ActivityKind.BINARY,
    arity=2,
    cost_shape=CostShape.MERGE,
    param_names=(),
    planner=_no_param_binary_plan,
    commutative=True,
    predicate_name="U",
    doc="Bag union of two flows with compatible schemas.",
)


def _join_plan(params: Mapping[str, Any]) -> SchemaPlan:
    on = tuple(params["on"])
    if not on:
        raise TemplateError("join: the `on` attribute list must be non-empty")
    return SchemaPlan(
        functionality_per_input=(Schema(on), Schema(on)),
        generated=EMPTY_SCHEMA,
        projected_out=EMPTY_SCHEMA,
    )


JOIN = ActivityTemplate(
    name="join",
    kind=ActivityKind.BINARY,
    arity=2,
    cost_shape=CostShape.SORT_MERGE,
    param_names=("on",),
    planner=_join_plan,
    commutative=True,
    predicate_name="JOIN",
    doc="Inner equi-join of two flows on the shared reference attributes `on`.",
)

DIFFERENCE = ActivityTemplate(
    name="difference",
    kind=ActivityKind.BINARY,
    arity=2,
    cost_shape=CostShape.SORT_MERGE,
    param_names=(),
    planner=_no_param_binary_plan,
    commutative=False,
    predicate_name="DIFF",
    doc="Bag difference: rows of the first flow minus rows of the second.",
)

INTERSECTION = ActivityTemplate(
    name="intersection",
    kind=ActivityKind.BINARY,
    arity=2,
    cost_shape=CostShape.SORT_MERGE,
    param_names=(),
    planner=_no_param_binary_plan,
    commutative=True,
    predicate_name="INTR",
    doc="Bag intersection of two flows with compatible schemas.",
)


ALL_BUILTIN_TEMPLATES = (
    SELECTION,
    NOT_NULL,
    RANGE_CHECK,
    PK_CHECK,
    PROJECTION,
    DISTINCT,
    FUNCTION_APPLY,
    SURROGATE_KEY,
    AGGREGATION,
    UNION,
    JOIN,
    DIFFERENCE,
    INTERSECTION,
)


def distributes_over_for(template: ActivityTemplate, params: Mapping[str, Any]) -> frozenset[str]:
    """Effective distributes-over set for one instantiation.

    Most templates use their static set; ``function_apply`` widens it to
    difference/intersection when the instantiation is flagged injective.
    """
    if template.name == "function_apply":
        return _function_distributes(params)
    return template.distributes_over


def derive_unary_output(
    template: ActivityTemplate,
    params: Mapping[str, Any],
    plan: SchemaPlan,
    input_schema: Schema,
) -> Schema:
    """Output schema of a unary instantiation for a concrete input schema.

    Generic rule: ``input - projected_out + generated``; aggregation
    restricts the output to its group-by attributes plus the aggregate.
    """
    if template.name == "aggregation":
        return _aggregation_output(params, (input_schema,))
    kept = input_schema.minus(plan.projected_out)
    collisions = plan.generated.as_set & kept.as_set
    if collisions:
        raise SchemaError(
            f"template {template.name!r}: generated attributes "
            f"{sorted(collisions)} already present in the incoming flow"
        )
    return kept.union(plan.generated)


def derive_binary_output(
    template: ActivityTemplate,
    params: Mapping[str, Any],
    left: Schema,
    right: Schema,
) -> Schema:
    """Output schema of a binary instantiation for concrete input schemas."""
    if template.name == "join":
        return left.union(right)
    # Union / difference / intersection require compatible branch schemas and
    # present the first branch's attribute order.
    return left
