"""Template-catalogue rendering: documentation straight from the library.

``render_catalog`` turns a :class:`TemplateLibrary` into a Markdown
document listing every template's signature, semantic class, cost shape,
auxiliary-schema behaviour and mobility (what it may be factorized /
distributed across) — the information a designer needs when assembling a
workflow, kept automatically in sync with the code.
"""

from __future__ import annotations

from repro.templates.base import ActivityTemplate
from repro.templates.library import TemplateLibrary, default_library

__all__ = ["render_catalog", "template_summary"]


def template_summary(template: ActivityTemplate) -> dict:
    """Structured one-row summary of a template."""
    return {
        "name": template.name,
        "kind": template.kind.value,
        "arity": template.arity,
        "cost_shape": template.cost_shape.value,
        "params": ", ".join(template.param_names) or "—",
        "optional_params": ", ".join(template.optional_param_names) or "—",
        "moves_across": ", ".join(sorted(template.distributes_over)) or "—",
        "predicate": template.predicate_name,
        "doc": template.doc.strip().split("\n")[0] if template.doc else "",
    }


def render_catalog(library: TemplateLibrary | None = None) -> str:
    """A Markdown catalogue of every registered template."""
    library = library if library is not None else default_library()
    lines = [
        "# Activity template catalogue",
        "",
        "| template | kind | arity | cost | parameters | moves across | predicate |",
        "|---|---|---|---|---|---|---|",
    ]
    for template in sorted(library, key=lambda t: (t.arity, t.name)):
        row = template_summary(template)
        lines.append(
            f"| `{row['name']}` | {row['kind']} | {row['arity']} "
            f"| {row['cost_shape']} | {row['params']} "
            f"| {row['moves_across']} | `{row['predicate']}` |"
        )
    lines.append("")
    for template in sorted(library, key=lambda t: (t.arity, t.name)):
        if not template.doc:
            continue
        lines.append(f"**`{template.name}`** — {template.doc.strip()}")
        lines.append("")
    return "\n".join(lines)
