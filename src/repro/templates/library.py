"""Template library registry.

A :class:`TemplateLibrary` is the extensible collection of activity
templates a workflow draws from — the paper's reference [18] describes the
idea: "for any other, new activity, that the designer wishes to introduce,
explicit ... semantics can also be given".  Users extend the default library
with their own templates (see ``examples/custom_templates.py``), registering
executable semantics with the engine under the same name.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.exceptions import TemplateError
from repro.templates.base import ActivityTemplate
from repro.templates.builtin import ALL_BUILTIN_TEMPLATES

__all__ = ["TemplateLibrary", "default_library"]


class TemplateLibrary:
    """A named collection of :class:`ActivityTemplate` objects."""

    def __init__(self, templates: tuple[ActivityTemplate, ...] = ()):
        self._templates: dict[str, ActivityTemplate] = {}
        for template in templates:
            self.register(template)

    def register(self, template: ActivityTemplate, replace: bool = False) -> None:
        """Add a template; refuses silent redefinition unless ``replace``."""
        if template.name in self._templates and not replace:
            raise TemplateError(
                f"template {template.name!r} is already registered "
                "(pass replace=True to override)"
            )
        self._templates[template.name] = template

    def get(self, name: str) -> ActivityTemplate:
        try:
            return self._templates[name]
        except KeyError:
            raise TemplateError(f"unknown template {name!r}") from None

    def __contains__(self, name: object) -> bool:
        return name in self._templates

    def __iter__(self) -> Iterator[ActivityTemplate]:
        return iter(self._templates.values())

    def __len__(self) -> int:
        return len(self._templates)

    def names(self) -> tuple[str, ...]:
        return tuple(self._templates)

    def copy(self) -> "TemplateLibrary":
        """An independent library with the same templates."""
        return TemplateLibrary(tuple(self._templates.values()))


def default_library() -> TemplateLibrary:
    """A fresh library holding all builtin templates."""
    return TemplateLibrary(ALL_BUILTIN_TEMPLATES)
