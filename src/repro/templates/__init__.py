"""Activity templates: the reusable ETL transformation vocabulary."""

from repro.templates.base import (
    ActivityKind,
    ActivityTemplate,
    CostShape,
    SchemaPlan,
)
from repro.templates.builtin import (
    AGGREGATION,
    DISTINCT,
    ALL_BUILTIN_TEMPLATES,
    DIFFERENCE,
    FUNCTION_APPLY,
    INTERSECTION,
    JOIN,
    NOT_NULL,
    PK_CHECK,
    PROJECTION,
    RANGE_CHECK,
    SELECTION,
    SURROGATE_KEY,
    UNION,
)
from repro.templates.library import TemplateLibrary, default_library

__all__ = [
    "ActivityKind",
    "ActivityTemplate",
    "CostShape",
    "SchemaPlan",
    "TemplateLibrary",
    "default_library",
    "SELECTION",
    "NOT_NULL",
    "RANGE_CHECK",
    "PK_CHECK",
    "PROJECTION",
    "FUNCTION_APPLY",
    "SURROGATE_KEY",
    "AGGREGATION",
    "DISTINCT",
    "UNION",
    "JOIN",
    "DIFFERENCE",
    "INTERSECTION",
    "ALL_BUILTIN_TEMPLATES",
]
