"""Activity templates: the reusable transformation vocabulary.

The paper builds on a library of *template activities* (reference [18], the
ARKTOS II framework): each template has predefined semantics, a parameter
"signature", and declares — at the template level — which parameters form
the functionality schema and which attributes are generated or projected
out.  Designers instantiate templates to obtain concrete activities.

This module defines the :class:`ActivityTemplate` descriptor.  The shipped
templates live in :mod:`repro.templates.builtin`; their executable semantics
(used by the execution-engine substrate) live in
:mod:`repro.engine.operators`, keyed by template name, so the logical core
stays independent of the physical layer.
"""

from __future__ import annotations

import enum
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.core.schema import Schema
from repro.exceptions import TemplateError

__all__ = ["ActivityKind", "CostShape", "ActivityTemplate", "SchemaPlan"]


class ActivityKind(enum.Enum):
    """Coarse semantic class of a template.

    The transition machinery keys a few decisions off this class: filters
    and row-wise functions are candidates for factorize/distribute,
    aggregations never are, and binary activities delimit local groups.
    """

    FILTER = "filter"          # row-wise predicate; drops rows, keeps schema
    FUNCTION = "function"      # row-wise derivation; may generate/drop attrs
    AGGREGATION = "aggregation"  # blocking; groups rows, generates aggregates
    BINARY = "binary"          # union, join, difference, intersection
    SINK_ADAPTER = "sink_adapter"  # schema-shaping before a target (projection)


class CostShape(enum.Enum):
    """Asymptotic shape of a template's per-invocation cost.

    The default processed-rows cost model (section 2.2 / [15]) maps these to
    concrete formulae; custom cost models may interpret them differently.
    """

    LINEAR = "linear"            # c(n) = n          (filters, functions)
    SORT = "sort"                # c(n) = n*log2(n)  (aggregation, surrogate key)
    MERGE = "merge"              # c(n1,n2) = n1+n2  (union)
    SORT_MERGE = "sort_merge"    # c(n1,n2) = n1*log2(n1)+n2*log2(n2) (join, diff)


@dataclass(frozen=True)
class SchemaPlan:
    """The auxiliary schemata of one instantiation (section 3.2).

    ``functionality_per_input`` lists, for each input schema, the attributes
    that input contributes to the computation; the paper's predicate
    machinery uses them separately for binary activities (``n.in1.fun`` /
    ``n.in2.fun``).  ``functionality`` is their union.
    """

    functionality_per_input: tuple[Schema, ...]
    generated: Schema
    projected_out: Schema

    @property
    def functionality(self) -> Schema:
        combined = Schema(())
        for part in self.functionality_per_input:
            combined = combined.union(part)
        return combined


# A planner receives the validated parameter mapping and returns the
# SchemaPlan for an instantiation; each builtin template supplies one.
SchemaPlanner = Callable[[Mapping[str, Any]], SchemaPlan]


@dataclass(frozen=True)
class ActivityTemplate:
    """A reusable, parameterized activity definition.

    Attributes:
        name: unique template identifier, e.g. ``"selection"``; also the key
            under which the engine looks up the executable operator.
        kind: coarse semantic class, see :class:`ActivityKind`.
        arity: number of input schemata (1 for unary, 2 for binary).
        cost_shape: asymptotic cost family, see :class:`CostShape`.
        param_names: required parameter names for instantiation.
        planner: computes the auxiliary schemata from parameters.
        distributes_over: names of *binary* templates across which instances
            of this template may be factorized/distributed.  Empty for
            templates that never move across a binary activity.
        injective: for functions — True when the row-wise mapping is
            injective on its functionality attributes, which is what makes
            distribution over difference/intersection semantics-preserving.
        commutative: for binary templates — True when input order does not
            matter (union, join, intersection); difference is not.
        predicate_name: the name used in activity post-conditions
            (section 3.4); defaults to the template name.
    """

    name: str
    kind: ActivityKind
    arity: int
    cost_shape: CostShape
    param_names: tuple[str, ...]
    planner: SchemaPlanner
    distributes_over: frozenset[str] = frozenset()
    injective: bool = False
    commutative: bool = True
    predicate_name: str = ""
    doc: str = ""
    optional_param_names: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.arity not in (1, 2):
            raise TemplateError(f"template {self.name!r}: arity must be 1 or 2")
        if self.kind is ActivityKind.BINARY and self.arity != 2:
            raise TemplateError(f"template {self.name!r}: BINARY implies arity 2")
        if self.kind is not ActivityKind.BINARY and self.arity != 1:
            raise TemplateError(f"template {self.name!r}: non-binary implies arity 1")
        if not self.predicate_name:
            object.__setattr__(self, "predicate_name", self.name)

    @property
    def is_unary(self) -> bool:
        return self.arity == 1

    @property
    def is_binary(self) -> bool:
        return self.arity == 2

    def validate_params(self, params: Mapping[str, Any]) -> dict[str, Any]:
        """Check a parameter mapping against the template signature."""
        missing = [p for p in self.param_names if p not in params]
        if missing:
            raise TemplateError(
                f"template {self.name!r}: missing parameters {missing}"
            )
        allowed = set(self.param_names) | set(self.optional_param_names)
        unknown = [p for p in params if p not in allowed]
        if unknown:
            raise TemplateError(
                f"template {self.name!r}: unknown parameters {unknown}"
            )
        return dict(params)

    def plan(self, params: Mapping[str, Any]) -> SchemaPlan:
        """Compute the auxiliary schemata for a parameter mapping."""
        return self.planner(self.validate_params(params))
